// Package server implements the HTTP API of cmd/sgserve: streaming
// edge ingestion, analytics queries, and snapshotting over a
// streamgraph.System.
//
// The ingestion path is hardened for concurrent clients: a bounded
// admission queue rejects overflow with 429 + Retry-After instead of
// queueing unboundedly, every request that needs the (sequential)
// system honors a deadline and fails with 503 instead of wedging, and
// each batch runs behind the pipeline's panic isolation boundary so a
// poisoned batch returns 503 with the store consistent and the server
// fully usable. Queue occupancy feeds the pipeline's load-shed ladder
// as its pressure signal.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"streamgraph"
)

// Options bound the ingestion path. The zero value of each field
// selects the default, so Options{} is a fully hardened server.
type Options struct {
	// QueueDepth is the admission queue capacity: the maximum number
	// of batch requests in house (one processing + the rest waiting).
	// Further batches get 429. Default 64.
	QueueDepth int
	// QueueTimeout bounds how long any request waits for the system
	// before failing with 503. Default 10s.
	QueueTimeout time.Duration
	// MaxBatchEdges rejects larger batches with 400. Default 1<<20.
	MaxBatchEdges int
	// MaxVertex rejects batches naming vertex IDs above it with 400,
	// bounding on-demand store growth. Default 1<<26.
	MaxVertex uint32
	// MaxBodyBytes caps the request body. Default 8<<20.
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueTimeout == 0 {
		o.QueueTimeout = 10 * time.Second
	}
	if o.MaxBatchEdges == 0 {
		o.MaxBatchEdges = 1 << 20
	}
	if o.MaxVertex == 0 {
		o.MaxVertex = 1 << 26
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

// EdgeJSON is the wire form of one edge.
type EdgeJSON struct {
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float32 `json:"weight,omitempty"`
	Delete bool    `json:"delete,omitempty"`
}

// BatchResponse reports one ingested batch.
type BatchResponse struct {
	BatchID         int     `json:"batchId"`
	Reordered       bool    `json:"reordered"`
	Instrumented    bool    `json:"instrumented"`
	CAD             float64 `json:"cad,omitempty"`
	Locality        float64 `json:"locality"`
	UpdateMicros    int64   `json:"updateMicros"`
	ComputeMicros   int64   `json:"computeMicros"`
	ComputedBatches int     `json:"computedBatches"`
}

// Server serves the streaming graph API. The system's execution model
// is sequential, so requests that touch it serialize on a processing
// token; the bounded admission queue in front of the token is what
// turns overload into fast 429s instead of unbounded goroutine pileup.
type Server struct {
	sys  *streamgraph.System
	obs  *streamgraph.Observer
	opts Options
	mux  *http.ServeMux

	// admit is the bounded admission queue: a batch request holds one
	// slot from acceptance to response. proc is the processing token
	// serializing all system access; capacity 1 so it can be acquired
	// in a select with a deadline.
	admit chan struct{}
	proc  chan struct{}

	// statsMu guards the ingestion counters below (server-level, not
	// registered in the observer's registry so restarting a server on
	// a shared observer cannot collide on metric names).
	statsMu   sync.Mutex
	batches   int //sglint:guard statsMu
	reordered int //sglint:guard statsMu
	rounds    int //sglint:guard statsMu
	rejected  int //sglint:guard statsMu
	timeouts  int //sglint:guard statsMu
	panics    int //sglint:guard statsMu
	// batchEWMA is the exponentially weighted moving average of
	// observed wall-clock batch processing time; it feeds the derived
	// Retry-After estimate. Zero until the first batch completes.
	batchEWMA time.Duration //sglint:guard statsMu
}

// ewmaAlpha is the smoothing factor for the per-batch latency EWMA.
const ewmaAlpha = 0.3

// observeBatch folds one batch's wall-clock processing time into the
// latency EWMA.
func (s *Server) observeBatch(d time.Duration) {
	s.statsMu.Lock()
	if s.batchEWMA == 0 {
		s.batchEWMA = d
	} else {
		s.batchEWMA = time.Duration(ewmaAlpha*float64(d) + (1-ewmaAlpha)*float64(s.batchEWMA))
	}
	s.statsMu.Unlock()
}

// retryAfterSecs estimates how long a rejected or timed-out client
// should back off: the batches already in house each take roughly
// perBatch to drain, so the estimate is (queued+1)·perBatch rounded up
// to whole seconds and clamped to [1, 30]. With no latency observation
// yet it returns the floor.
func retryAfterSecs(queued int, perBatch time.Duration) int {
	if perBatch <= 0 {
		return 1
	}
	wait := time.Duration(queued+1) * perBatch
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// retryAfter derives the Retry-After header value from current queue
// occupancy and the observed per-batch latency.
func (s *Server) retryAfter() string {
	s.statsMu.Lock()
	per := s.batchEWMA
	s.statsMu.Unlock()
	return strconv.Itoa(retryAfterSecs(len(s.admit), per))
}

// New wraps sys in an HTTP handler with default hardening (see
// Options). When the system carries an observer (Config.Observer),
// /metrics additionally exposes its full registry and /trace serves
// its per-batch decision traces.
func New(sys *streamgraph.System) *Server {
	return NewWithOptions(sys, Options{})
}

// NewWithOptions wraps sys with explicit ingestion bounds, and
// attaches the server's queue occupancy to the system as its load-shed
// pressure source. The server assumes sole ownership of the system:
// all access must go through its handlers.
func NewWithOptions(sys *streamgraph.System, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		sys:   sys,
		obs:   sys.Observer(),
		opts:  opts,
		mux:   http.NewServeMux(),
		admit: make(chan struct{}, opts.QueueDepth),
		proc:  make(chan struct{}, 1),
	}
	sys.SetPressureSource(s.Pressure)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("POST /flush", s.handleFlush)
	s.mux.HandleFunc("GET /rank", s.vertexQuery(func(v streamgraph.VertexID) (string, float64) {
		return "rank", s.sys.Rank(v)
	}))
	s.mux.HandleFunc("GET /distance", s.vertexQuery(func(v streamgraph.VertexID) (string, float64) {
		return "distance", s.sys.Distance(v)
	}))
	s.mux.HandleFunc("GET /level", s.vertexQuery(func(v streamgraph.VertexID) (string, float64) {
		return "level", float64(s.sys.Level(v))
	}))
	s.mux.HandleFunc("GET /component", s.vertexQuery(func(v streamgraph.VertexID) (string, float64) {
		return "component", float64(s.sys.Component(v))
	}))
	s.mux.HandleFunc("GET /neighbors", s.handleNeighbors)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /trace", s.handleTrace)
	s.mux.HandleFunc("GET /trace/spans", s.handleTraceSpans)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Pressure reports admission-queue occupancy in [0, 1] as the
// load-shed ladder's input. The request currently holding the
// processing token also holds an admission slot, so one slot is
// subtracted: pressure measures who is *waiting*, and an otherwise
// idle server processing one batch reports 0.
func (s *Server) Pressure() float64 {
	n := len(s.admit) - 1
	if n < 0 {
		n = 0
	}
	return float64(n) / float64(cap(s.admit))
}

// acquire takes the processing token, honoring the request deadline
// and the queue timeout. ok=false means the token never transferred
// (the system was never touched); the caller must 503.
func (s *Server) acquire(r *http.Request) (release func(), ok bool) {
	timer := time.NewTimer(s.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case s.proc <- struct{}{}:
		return func() { <-s.proc }, true
	case <-r.Context().Done():
		return nil, false
	case <-timer.C:
		return nil, false
	}
}

// ParseBatch decodes and validates one batch body under opts' limits:
// well-formed JSON with no trailing data, 1..MaxBatchEdges edges,
// vertex IDs within MaxVertex, finite weights (zero weight means 1, as
// before). Exported for the FuzzBatchRequest corpus to hit directly.
func ParseBatch(r io.Reader, opts Options) ([]streamgraph.Edge, error) {
	dec := json.NewDecoder(r)
	var in []EdgeJSON
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("bad batch JSON: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("bad batch JSON: trailing data after batch array")
	}
	if len(in) == 0 {
		return nil, errors.New("empty batch")
	}
	if len(in) > opts.MaxBatchEdges {
		return nil, fmt.Errorf("batch of %d edges exceeds limit %d", len(in), opts.MaxBatchEdges)
	}
	edges := make([]streamgraph.Edge, len(in))
	for i, e := range in {
		if e.Src > opts.MaxVertex || e.Dst > opts.MaxVertex {
			return nil, fmt.Errorf("edge %d: vertex ID exceeds limit %d", i, opts.MaxVertex)
		}
		w64 := float64(e.Weight)
		if math.IsNaN(w64) || math.IsInf(w64, 0) {
			return nil, fmt.Errorf("edge %d: non-finite weight", i)
		}
		weight := streamgraph.Weight(e.Weight)
		if weight == 0 {
			weight = 1
		}
		edges[i] = streamgraph.Edge{
			Src:    streamgraph.VertexID(e.Src),
			Dst:    streamgraph.VertexID(e.Dst),
			Weight: weight,
			Delete: e.Delete,
		}
	}
	return edges, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	// One trace ID per ingest request: the parse and admission spans
	// recorded here (batch ID -1 — no batch exists yet) join the span
	// tree the pipeline builds once the batch is created.
	traceID := s.obs.NextTraceID()
	ingest := s.obs.StartSpan(traceID, -1, "ingest")
	edges, err := ParseBatch(r.Body, s.opts)
	ingest.End()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Admission: non-blocking. A full queue answers 429 immediately —
	// overload is the client's signal to back off, not the server's
	// cue to accumulate goroutines. The admission span covers queue
	// entry through processing-token acquisition: the time the batch
	// spent waiting, the quantity the load-shed ladder keys on.
	admission := s.obs.StartSpan(traceID, -1, "admission")
	select {
	case s.admit <- struct{}{}:
	default:
		admission.End()
		s.statsMu.Lock()
		s.rejected++
		s.statsMu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "admission queue full", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.admit }()

	release, ok := s.acquire(r)
	admission.End()
	if !ok {
		// The token never transferred: the batch was NOT applied, so
		// the client may safely retry.
		s.statsMu.Lock()
		s.timeouts++
		s.statsMu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "queue timeout: batch not applied", http.StatusServiceUnavailable)
		return
	}
	start := time.Now()
	res, aerr := s.sys.ApplyBatchIsolatedTraced(edges, traceID)
	release()
	s.observeBatch(time.Since(start))

	if aerr != nil {
		// The pipeline recovered a panic: the store is consistent
		// (injection and isolation are pre-mutation, and batch
		// re-application is idempotent), the runner is usable, and the
		// client may retry the same batch.
		s.statsMu.Lock()
		s.panics++
		s.statsMu.Unlock()
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "batch failed: "+aerr.Error(), http.StatusServiceUnavailable)
		return
	}
	s.statsMu.Lock()
	s.batches++
	if res.Reordered {
		s.reordered++
	}
	if res.ComputedBatches > 0 {
		s.rounds++
	}
	s.statsMu.Unlock()
	writeJSON(w, BatchResponse{
		BatchID:         res.BatchID,
		Reordered:       res.Reordered,
		Instrumented:    res.Instrumented,
		CAD:             res.CAD,
		Locality:        res.Locality,
		UpdateMicros:    res.Update.Microseconds(),
		ComputeMicros:   res.Compute.Microseconds(),
		ComputedBatches: res.ComputedBatches,
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(r)
	if !ok {
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "queue timeout", http.StatusServiceUnavailable)
		return
	}
	err := s.sys.FlushIsolated()
	release()
	if err != nil {
		s.statsMu.Lock()
		s.panics++
		s.statsMu.Unlock()
		http.Error(w, "flush failed: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]string{"status": "flushed"})
}

// vertexQuery builds a handler answering per-vertex analytics.
func (s *Server) vertexQuery(get func(streamgraph.VertexID) (string, float64)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("v")
		v, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			http.Error(w, "bad or missing vertex parameter v", http.StatusBadRequest)
			return
		}
		release, ok := s.acquire(r)
		if !ok {
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, "queue timeout", http.StatusServiceUnavailable)
			return
		}
		name, val := get(streamgraph.VertexID(v))
		release()
		out := map[string]any{"vertex": v}
		if math.IsInf(val, 1) {
			out[name] = "unreachable"
		} else {
			out[name] = val
		}
		writeJSON(w, out)
	}
}

// NeighborJSON is the wire form of one adjacency entry.
type NeighborJSON struct {
	ID     uint32  `json:"id"`
	Weight float32 `json:"weight"`
}

// handleNeighbors serves a vertex's out- and in-adjacency. On a
// lock-free system the read comes from a pinned epoch snapshot and
// bypasses the processing token entirely — it answers while a batch
// is mid-ingest, which is the point of the epoch-based hot path. On a
// locked system it serializes on the token like every other read.
func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("v")
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		http.Error(w, "bad or missing vertex parameter v", http.StatusBadRequest)
		return
	}
	if !s.sys.LockFree() {
		release, ok := s.acquire(r)
		if !ok {
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, "queue timeout", http.StatusServiceUnavailable)
			return
		}
		defer release()
	}
	g, release := s.sys.GraphSnapshot()
	defer release()
	vid := streamgraph.VertexID(v)
	out := []NeighborJSON{}
	in := []NeighborJSON{}
	// An out-of-range vertex still answers 200 — the query itself is
	// well-formed — but with "known": false, so clients can tell "no
	// such vertex yet" apart from a real isolated vertex (known, empty
	// adjacency). Known vertices report "known": true.
	known := int(v) < g.NumVertices()
	if known {
		g.ForEachOut(vid, func(n streamgraph.Neighbor) {
			out = append(out, NeighborJSON{ID: uint32(n.ID), Weight: float32(n.Weight)})
		})
		g.ForEachIn(vid, func(n streamgraph.Neighbor) {
			in = append(in, NeighborJSON{ID: uint32(n.ID), Weight: float32(n.Weight)})
		})
	}
	writeJSON(w, map[string]any{"vertex": v, "known": known, "out": out, "in": in})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(r)
	if !ok {
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "queue timeout", http.StatusServiceUnavailable)
		return
	}
	// Take the metrics snapshot and the graph gauges under the SAME
	// token hold: snapshotting before acquiring would let a batch land
	// in between, reporting vertices/edges one batch ahead of
	// updateSeconds/computeSeconds.
	m := s.sys.MetricsSnapshot()
	vertices, edges := s.sys.NumVertices(), s.sys.NumEdges()
	release()
	s.statsMu.Lock()
	batches := s.batches
	s.statsMu.Unlock()
	writeJSON(w, map[string]any{
		"vertices": vertices,
		"edges":    edges,
		"batches":  batches,
		// measuredBatches counts the per-batch metric records behind
		// updateSeconds/computeSeconds — always consistent with the
		// gauges above, unlike "batches" which counts this server
		// instance's accepted requests.
		"measuredBatches": len(m.Batches),
		"updateSeconds":   m.UpdateSeconds(),
		"computeSeconds":  m.ComputeSeconds(),
	})
}

// handleMetrics exposes the full metric set in the Prometheus text
// format: the server's own ingestion and robustness counters and graph
// gauges, plus — when the system carries an observer — every registry
// metric (pipeline stage latencies, ABR/OCA decision series, panic and
// shed counters, update-engine work counters).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(r)
	if !ok {
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "queue timeout", http.StatusServiceUnavailable)
		return
	}
	edges, vertices := s.sys.NumEdges(), s.sys.NumVertices()
	release()
	s.statsMu.Lock()
	batches, reordered, rounds := s.batches, s.reordered, s.rounds
	rejected, timeouts, panics := s.rejected, s.timeouts, s.panics
	s.statsMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP streamgraph_batches_total Batches ingested.\n")
	fmt.Fprintf(w, "# TYPE streamgraph_batches_total counter\n")
	fmt.Fprintf(w, "streamgraph_batches_total %d\n", batches)
	fmt.Fprintf(w, "# HELP streamgraph_reordered_batches_total Batches ABR chose to reorder.\n")
	fmt.Fprintf(w, "# TYPE streamgraph_reordered_batches_total counter\n")
	fmt.Fprintf(w, "streamgraph_reordered_batches_total %d\n", reordered)
	fmt.Fprintf(w, "# HELP streamgraph_compute_rounds_total Computation rounds scheduled (OCA may cover two batches per round).\n")
	fmt.Fprintf(w, "# TYPE streamgraph_compute_rounds_total counter\n")
	fmt.Fprintf(w, "streamgraph_compute_rounds_total %d\n", rounds)
	fmt.Fprintf(w, "# HELP streamgraph_server_rejected_total Batches rejected with 429 (admission queue full).\n")
	fmt.Fprintf(w, "# TYPE streamgraph_server_rejected_total counter\n")
	fmt.Fprintf(w, "streamgraph_server_rejected_total %d\n", rejected)
	fmt.Fprintf(w, "# HELP streamgraph_server_queue_timeouts_total Requests failed with 503 waiting for the system.\n")
	fmt.Fprintf(w, "# TYPE streamgraph_server_queue_timeouts_total counter\n")
	fmt.Fprintf(w, "streamgraph_server_queue_timeouts_total %d\n", timeouts)
	fmt.Fprintf(w, "# HELP streamgraph_server_panic_batches_total Batches failed with 503 after a recovered pipeline panic.\n")
	fmt.Fprintf(w, "# TYPE streamgraph_server_panic_batches_total counter\n")
	fmt.Fprintf(w, "streamgraph_server_panic_batches_total %d\n", panics)
	fmt.Fprintf(w, "# HELP streamgraph_server_queue_depth Admission queue slots currently held.\n")
	fmt.Fprintf(w, "# TYPE streamgraph_server_queue_depth gauge\n")
	fmt.Fprintf(w, "streamgraph_server_queue_depth %d\n", len(s.admit))
	fmt.Fprintf(w, "# HELP streamgraph_edges Current directed edge count.\n")
	fmt.Fprintf(w, "# TYPE streamgraph_edges gauge\n")
	fmt.Fprintf(w, "streamgraph_edges %d\n", edges)
	fmt.Fprintf(w, "# HELP streamgraph_vertices Current vertex-space size.\n")
	fmt.Fprintf(w, "# TYPE streamgraph_vertices gauge\n")
	fmt.Fprintf(w, "streamgraph_vertices %d\n", vertices)
	if s.obs != nil {
		s.obs.Registry.WritePrometheus(w)
	}
}

// handleMetricsJSON serves the pre-observability ad-hoc JSON payload
// (the server counters, now including the robustness set), extended
// with a summary snapshot of every registry metric when an observer is
// attached.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(r)
	if !ok {
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "queue timeout", http.StatusServiceUnavailable)
		return
	}
	edges, vertices := s.sys.NumEdges(), s.sys.NumVertices()
	shadow := s.sys.ShadowReport()
	sharded := s.sys.Sharded()
	var shardRep streamgraph.ShardReport
	if sharded {
		shardRep = s.sys.ShardReport()
	}
	release()
	s.statsMu.Lock()
	out := map[string]any{
		"batches":       s.batches,
		"reordered":     s.reordered,
		"computeRounds": s.rounds,
		"rejected":      s.rejected,
		"queueTimeouts": s.timeouts,
		"panicBatches":  s.panics,
		"edges":         edges,
		"vertices":      vertices,
	}
	s.statsMu.Unlock()
	if shadow.Kind != "" {
		out["storeShadow"] = shadow
	}
	if sharded {
		out["shards"] = shardRep
	}
	if s.obs != nil {
		out["metrics"] = s.obs.Registry.Snapshot()
		out["traceDropped"] = map[string]any{
			"decisions": s.obs.TraceDroppedDecisions.Value(),
			"spans":     s.obs.TraceDroppedSpans.Value(),
		}
	}
	writeJSON(w, out)
}

// handleTrace serves the most recent per-batch pipeline traces (ABR
// and OCA decisions with the values they compared, shed levels,
// recovered panics, per-stage spans). ?n= bounds the count; default
// and maximum are the ring capacity.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil || s.obs.Traces == nil {
		http.Error(w, "tracing disabled: server started without an observer",
			http.StatusNotFound)
		return
	}
	n := 0 // all stored traces
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			http.Error(w, "bad trace count parameter n", http.StatusBadRequest)
			return
		}
		n = v
	}
	traces := s.obs.Traces.Last(n)
	if traces == nil {
		traces = []streamgraph.BatchTrace{}
	}
	writeJSON(w, traces)
}

// handleTraceSpans streams the span flight recorder as JSON lines
// (newest last): one SpanEvent per line, the same format as the
// sgserve -span-log file sink. ?n= bounds the count; default and
// maximum are the ring capacity.
func (s *Server) handleTraceSpans(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil || s.obs.Spans == nil {
		http.Error(w, "span tracing disabled: server started without an observer",
			http.StatusNotFound)
		return
	}
	n := 0 // all stored events
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			http.Error(w, "bad span count parameter n", http.StatusBadRequest)
			return
		}
		n = v
	}
	events := s.obs.Spans.Last(n)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return
		}
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(r)
	if !ok {
		w.Header().Set("Retry-After", s.retryAfter())
		http.Error(w, "queue timeout", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="graph.sgsnap"`)
	err := s.sys.WriteSnapshot(w)
	release()
	if err != nil {
		// Headers are out; all we can do is log-style report.
		fmt.Fprintf(w, "\nsnapshot error: %v\n", err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
