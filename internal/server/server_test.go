package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"streamgraph"
	"streamgraph/internal/trace"
)

func newTestServer(t *testing.T, analytics streamgraph.Analytics) *httptest.Server {
	t.Helper()
	sys := streamgraph.New(streamgraph.Config{
		Vertices:   1000,
		Workers:    2,
		Analytics:  analytics,
		DisableOCA: true,
	})
	ts := httptest.NewServer(New(sys))
	t.Cleanup(ts.Close)
	return ts
}

func postBatch(t *testing.T, ts *httptest.Server, body string) BatchResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /batch status %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getJSON(t *testing.T, ts *httptest.Server, path string) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", path, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIngestAndRank(t *testing.T) {
	ts := newTestServer(t, streamgraph.AnalyticsPageRank)
	res := postBatch(t, ts, `[{"src":1,"dst":7},{"src":2,"dst":7},{"src":3,"dst":7}]`)
	if res.BatchID != 0 {
		t.Fatalf("BatchID = %d", res.BatchID)
	}
	stats := getJSON(t, ts, "/stats")
	if stats["edges"].(float64) != 3 || stats["batches"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}
	rank := getJSON(t, ts, "/rank?v=7")
	if rank["rank"].(float64) <= 0 {
		t.Fatalf("rank = %v", rank)
	}
}

func TestSSSPEndpoints(t *testing.T) {
	ts := newTestServer(t, streamgraph.AnalyticsSSSP)
	postBatch(t, ts, `[{"src":0,"dst":1,"weight":2},{"src":1,"dst":2,"weight":3}]`)
	d := getJSON(t, ts, "/distance?v=2")
	if d["distance"].(float64) != 5 {
		t.Fatalf("distance = %v", d)
	}
	unreached := getJSON(t, ts, "/distance?v=99")
	if unreached["distance"] != "unreachable" {
		t.Fatalf("unreached = %v", unreached)
	}
}

func TestBFSAndCCEndpoints(t *testing.T) {
	bfs := newTestServer(t, streamgraph.AnalyticsBFS)
	postBatch(t, bfs, `[{"src":0,"dst":1},{"src":1,"dst":2}]`)
	if lv := getJSON(t, bfs, "/level?v=2"); lv["level"].(float64) != 2 {
		t.Fatalf("level = %v", lv)
	}

	cc := newTestServer(t, streamgraph.AnalyticsCC)
	postBatch(t, cc, `[{"src":5,"dst":6},{"src":6,"dst":7}]`)
	if comp := getJSON(t, cc, "/component?v=7"); comp["component"].(float64) != 5 {
		t.Fatalf("component = %v", comp)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, streamgraph.AnalyticsNone)
	for _, c := range []struct{ path, body string }{
		{"/batch", `not json`},
		{"/batch", `[]`},
	} {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q: status %d", c.path, c.body, resp.StatusCode)
		}
	}
	resp, _ := http.Get(ts.URL + "/rank?v=notanumber")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad vertex param: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp2, _ := http.Get(ts.URL + "/batch")
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("GET /batch should not succeed")
	}
}

func TestFlushAndSnapshot(t *testing.T) {
	ts := newTestServer(t, streamgraph.AnalyticsPageRank)
	postBatch(t, ts, `[{"src":1,"dst":2},{"src":2,"dst":3}]`)
	resp, err := http.Post(ts.URL+"/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}

	snap, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(snap.Body); err != nil {
		t.Fatal(err)
	}
	store, err := trace.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if store.NumEdges() != 2 {
		t.Fatalf("snapshot has %d edges", store.NumEdges())
	}
	if !store.HasEdge(1, 2) || !store.HasEdge(2, 3) {
		t.Fatal("snapshot lost edges")
	}
}

func TestDefaultWeightAndDelete(t *testing.T) {
	ts := newTestServer(t, streamgraph.AnalyticsNone)
	postBatch(t, ts, `[{"src":1,"dst":2}]`) // weight omitted → 1
	postBatch(t, ts, `[{"src":1,"dst":2,"delete":true}]`)
	stats := getJSON(t, ts, "/stats")
	if stats["edges"].(float64) != 0 {
		t.Fatalf("edges after delete = %v", stats["edges"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, streamgraph.AnalyticsPageRank)
	postBatch(t, ts, `[{"src":1,"dst":2},{"src":2,"dst":3}]`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	for _, want := range []string{
		"streamgraph_batches_total 1",
		"streamgraph_edges 2",
		"streamgraph_compute_rounds_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
