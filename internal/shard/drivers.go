package shard

//sglint:pool scatter workers join on wg.Wait before the superstep merges; a panic in a driver kernel must crash, not silently drop a shard's frontier partition

import (
	"math"
	"sync"

	"streamgraph/internal/graph"
)

// Scatter/gather analytics drivers: each algorithm runs in supersteps
// where every shard processes its *owned* part of the frontier
// against its local store concurrently (scatter — complete adjacency
// under the mirroring rule means no remote reads), and the emitted
// relaxations are merged into the global result vector sequentially
// (gather). The merged answers match the single-node engines: BFS
// levels, CC labels and SSSP distances exactly, PageRank within
// float-summation-order noise.

// relax is one emitted candidate: "vertex v could take value val".
type relax struct {
	v   graph.VertexID
	val float64
}

// scatter partitions the frontier by owner, runs visit over each
// shard's portion concurrently against that shard's local store, and
// returns the emissions concatenated in shard order (frontier order
// within a shard), so the gather phase is deterministic.
func (r *Router) scatter(frontier []graph.VertexID, visit func(st graph.Store, v graph.VertexID, emit func(graph.VertexID, float64))) []relax {
	parts := make([][]graph.VertexID, r.cfg.Shards)
	for _, v := range frontier {
		o := r.ring.Owner(v)
		parts[o] = append(parts[o], v)
	}
	outs := make([][]relax, r.cfg.Shards)
	var wg sync.WaitGroup
	for i := range parts {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := r.shards[i].runner.Store()
			var acc []relax
			for _, v := range parts[i] {
				visit(st, v, func(u graph.VertexID, val float64) {
					acc = append(acc, relax{v: u, val: val})
				})
			}
			outs[i] = acc
		}(i)
	}
	wg.Wait()
	var all []relax
	for i := range outs {
		all = append(all, outs[i]...)
	}
	return all
}

// ownedVertexLists partitions [0, n) by current owner.
func (r *Router) ownedVertexLists(n int) [][]graph.VertexID {
	parts := make([][]graph.VertexID, r.cfg.Shards)
	for v := 0; v < n; v++ {
		o := r.ring.Owner(graph.VertexID(v))
		parts[o] = append(parts[o], graph.VertexID(v))
	}
	return parts
}

// forEachShardOwned runs fn concurrently per shard over its owned
// vertex list. fn instances write only owner-partitioned slots of any
// shared vectors, so they never race.
func (r *Router) forEachShardOwned(owned [][]graph.VertexID, fn func(shard int, st graph.Store, vs []graph.VertexID)) {
	var wg sync.WaitGroup
	for i := range owned {
		if len(owned[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i, r.shards[i].runner.Store(), owned[i])
		}(i)
	}
	wg.Wait()
}

// BFSLevels computes hop distances from source over out-edges via
// frontier supersteps. Unreached vertices are -1, matching
// compute.BFS exactly (levels are order-independent: a round's
// candidates all carry the same depth).
func (r *Router) BFSLevels(source graph.VertexID) []int32 {
	n := r.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	if int(source) >= n {
		return levels
	}
	levels[source] = 0
	frontier := []graph.VertexID{source}
	for depth := int32(1); len(frontier) > 0; depth++ {
		cands := r.scatter(frontier, func(st graph.Store, v graph.VertexID, emit func(graph.VertexID, float64)) {
			st.ForEachOut(v, func(nb graph.Neighbor) { emit(nb.ID, 0) })
		})
		var next []graph.VertexID
		for _, c := range cands {
			if int(c.v) < n && levels[c.v] == -1 {
				levels[c.v] = depth
				next = append(next, c.v)
			}
		}
		frontier = next
	}
	return levels
}

// SSSPDistances computes shortest-path distances from source by
// label-correcting Bellman-Ford rounds. Each relaxation evaluates
// dist[u] + float64(weight) — the same float expression the
// delta-stepping engine uses — and both converge to the unique
// fixpoint of that equation, so distances match exactly. Unreached
// vertices are +Inf.
func (r *Router) SSSPDistances(source graph.VertexID) []float64 {
	n := r.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if int(source) >= n {
		return dist
	}
	dist[source] = 0
	active := []graph.VertexID{source}
	queued := make([]bool, n)
	for len(active) > 0 {
		cands := r.scatter(active, func(st graph.Store, v graph.VertexID, emit func(graph.VertexID, float64)) {
			dv := dist[v]
			st.ForEachOut(v, func(nb graph.Neighbor) { emit(nb.ID, dv+float64(nb.Weight)) })
		})
		var next []graph.VertexID
		for _, c := range cands {
			if int(c.v) < n && c.val < dist[c.v] {
				dist[c.v] = c.val
				if !queued[c.v] {
					queued[c.v] = true
					next = append(next, c.v)
				}
			}
		}
		for _, v := range next {
			queued[v] = false
		}
		active = next
	}
	return dist
}

// CCLabels computes connected-component labels (minimum vertex ID per
// component, undirected interpretation) by min-label propagation
// rounds over both edge directions — exactly compute.CC's semantics.
func (r *Router) CCLabels() []graph.VertexID {
	n := r.NumVertices()
	labels := make([]graph.VertexID, n)
	frontier := make([]graph.VertexID, n)
	for i := range labels {
		labels[i] = graph.VertexID(i)
		frontier[i] = graph.VertexID(i)
	}
	queued := make([]bool, n)
	for len(frontier) > 0 {
		cands := r.scatter(frontier, func(st graph.Store, v graph.VertexID, emit func(graph.VertexID, float64)) {
			lv := float64(labels[v])
			st.ForEachOut(v, func(nb graph.Neighbor) { emit(nb.ID, lv) })
			st.ForEachIn(v, func(nb graph.Neighbor) { emit(nb.ID, lv) })
		})
		var next []graph.VertexID
		for _, c := range cands {
			if l := graph.VertexID(c.val); int(c.v) < n && l < labels[c.v] {
				labels[c.v] = l
				if !queued[c.v] {
					queued[c.v] = true
					next = append(next, c.v)
				}
			}
		}
		for _, v := range next {
			queued[v] = false
		}
		frontier = next
	}
	return labels
}

// PageRanks computes damped PageRank with the same Jacobi pull sweeps
// as compute.PageRank's static engine: rank[v] = (1-d)/N + d ·
// Σ_{u∈in(v)} rank[u]/outDeg(u), iterated until the largest
// per-vertex change falls below tol or maxIter sweeps. Out-degrees
// are gathered once from each vertex's owner (a mirrored neighbor's
// local degree is incomplete by design). Zero arguments select the
// engine's defaults (d=0.85, maxIter=100, tol=1e-7).
func (r *Router) PageRanks(damping float64, maxIter int, tol float64) []float64 {
	n := r.NumVertices()
	if n == 0 {
		return nil
	}
	if damping <= 0 {
		damping = 0.85
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-7
	}
	owned := r.ownedVertexLists(n)
	outDeg := make([]int32, n)
	r.forEachShardOwned(owned, func(_ int, st graph.Store, vs []graph.VertexID) {
		for _, v := range vs {
			outDeg[v] = int32(st.OutDegree(v))
		}
	})
	base := (1 - damping) / float64(n)
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = base
	}
	next := make([]float64, n)
	deltas := make([]float64, r.cfg.Shards)
	for iter := 0; iter < maxIter; iter++ {
		for i := range deltas {
			deltas[i] = 0
		}
		r.forEachShardOwned(owned, func(shard int, st graph.Store, vs []graph.VertexID) {
			md := 0.0
			for _, v := range vs {
				sum := 0.0
				st.ForEachIn(v, func(nb graph.Neighbor) {
					if od := outDeg[nb.ID]; od > 0 {
						sum += ranks[nb.ID] / float64(od)
					}
				})
				nv := base + damping*sum
				next[v] = nv
				if d := math.Abs(nv - ranks[v]); d > md {
					md = d
				}
			}
			deltas[shard] = md
		})
		ranks, next = next, ranks
		maxDelta := 0.0
		for _, d := range deltas {
			if d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < tol {
			break
		}
	}
	return ranks
}
