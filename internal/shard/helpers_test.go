package shard

import (
	"math"

	"streamgraph/internal/graph"
)

// applyMutable applies a batch to a plain adjacency store under the
// repository's batch semantics: inserts first (existing edges refresh
// their weight), then deletes (absent edges are a no-op).
func applyMutable(s *graph.AdjacencyStore, b *graph.Batch) {
	for _, e := range b.Edges {
		if !e.Delete {
			s.InsertEdge(e)
		}
	}
	for _, e := range b.Edges {
		if e.Delete {
			s.DeleteEdge(e.Src, e.Dst)
		}
	}
}

// bfsRef is a sequential BFS over out-edges; unreached = -1.
func bfsRef(s graph.Store, source graph.VertexID) []int32 {
	n := s.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	if int(source) >= n {
		return levels
	}
	levels[source] = 0
	frontier := []graph.VertexID{source}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []graph.VertexID
		for _, v := range frontier {
			s.ForEachOut(v, func(nb graph.Neighbor) {
				if levels[nb.ID] == -1 {
					levels[nb.ID] = depth
					next = append(next, nb.ID)
				}
			})
		}
		frontier = next
	}
	return levels
}

// ssspRef is sequential Bellman-Ford to fixpoint using the same
// dist[u]+float64(weight) relaxation expression as the drivers.
func ssspRef(s graph.Store, source graph.VertexID) []float64 {
	n := s.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if int(source) >= n {
		return dist
	}
	dist[source] = 0
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			dv := dist[v]
			if math.IsInf(dv, 1) {
				continue
			}
			s.ForEachOut(graph.VertexID(v), func(nb graph.Neighbor) {
				if nd := dv + float64(nb.Weight); nd < dist[nb.ID] {
					dist[nb.ID] = nd
					changed = true
				}
			})
		}
	}
	return dist
}

// ccRef is sequential min-label propagation over both edge directions.
func ccRef(s graph.Store) []graph.VertexID {
	n := s.NumVertices()
	labels := make([]graph.VertexID, n)
	for i := range labels {
		labels[i] = graph.VertexID(i)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			lv := labels[v]
			spread := func(nb graph.Neighbor) {
				if lv < labels[nb.ID] {
					labels[nb.ID] = lv
					changed = true
				}
			}
			s.ForEachOut(graph.VertexID(v), spread)
			s.ForEachIn(graph.VertexID(v), spread)
		}
	}
	return labels
}

// prRef is the static Jacobi PageRank the compute engine implements:
// rank = (1-d)/N init, pull sweeps, stop when maxDelta < tol.
func prRef(s graph.Store, damping float64, maxIter int) []float64 {
	n := s.NumVertices()
	base := (1 - damping) / float64(n)
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = base
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for v := 0; v < n; v++ {
			sum := 0.0
			s.ForEachIn(graph.VertexID(v), func(nb graph.Neighbor) {
				if od := s.OutDegree(nb.ID); od > 0 {
					sum += ranks[nb.ID] / float64(od)
				}
			})
			nv := base + damping*sum
			next[v] = nv
			if d := math.Abs(nv - ranks[v]); d > maxDelta {
				maxDelta = d
			}
		}
		ranks, next = next, ranks
		if maxDelta < 1e-300 {
			break
		}
	}
	return ranks
}
