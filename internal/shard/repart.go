package shard

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"streamgraph/internal/graph"
	"streamgraph/internal/obs"
	"streamgraph/internal/pipeline"
	"streamgraph/internal/trace"
)

// Policy tunes the dynamic repartitioner. It reuses the repository's
// input-knowledge machinery: every routed batch is profiled with
// graph.ProfileBatch (the same CAD/skew statistics ABR collects) and
// folded into EWMAs; when the stream's degree skew has drifted above
// SkewThreshold and the resulting per-shard heat is imbalanced beyond
// ImbalanceRatio, the hottest shard's hottest vertex ranges migrate to
// the coolest shard through the snapshot save/restore path. The zero
// value enables repartitioning with the defaults below.
type Policy struct {
	// Disabled turns the repartitioner off entirely.
	Disabled bool
	// MinBatches is how many batches must be observed before the
	// first evaluation; 0 means 8.
	MinBatches int
	// Cooldown is the minimum batch distance between evaluations
	// (migrations or audited holds); 0 means 8.
	Cooldown int
	// SkewThreshold gates evaluation on the EWMA of per-batch degree
	// skew (fraction of a batch aimed at its hottest destination);
	// 0 means 0.2.
	SkewThreshold float64
	// ImbalanceRatio is the hottest-shard heat over the mean heat at
	// which migration (rather than an audited hold) triggers;
	// 0 means 1.5.
	ImbalanceRatio float64
	// Alpha is the EWMA smoothing factor for skew and per-vertex
	// heat; 0 means 0.3.
	Alpha float64
	// MaxMove bounds how many hot vertices migrate per event;
	// 0 means 8.
	MaxMove int
	// Lambda is the profile's high-degree cutoff; 0 means
	// graph.DefaultProfileLambda.
	Lambda int
}

func (p Policy) minBatches() int {
	if p.MinBatches > 0 {
		return p.MinBatches
	}
	return 8
}

func (p Policy) cooldown() int {
	if p.Cooldown > 0 {
		return p.Cooldown
	}
	return 8
}

func (p Policy) skewThreshold() float64 {
	if p.SkewThreshold > 0 {
		return p.SkewThreshold
	}
	return 0.2
}

func (p Policy) imbalanceRatio() float64 {
	if p.ImbalanceRatio > 0 {
		return p.ImbalanceRatio
	}
	return 1.5
}

func (p Policy) alpha() float64 {
	if p.Alpha > 0 {
		return p.Alpha
	}
	return 0.3
}

func (p Policy) maxMove() int {
	if p.MaxMove > 0 {
		return p.MaxMove
	}
	return 8
}

func (p Policy) lambda() int {
	if p.Lambda > 0 {
		return p.Lambda
	}
	return graph.DefaultProfileLambda
}

// repartitioner accumulates the input-knowledge signal. All state is
// touched only from Apply's single-threaded tail (the sequential
// execution contract), never from the fan-out goroutines.
type repartitioner struct {
	pol       Policy
	skew      float64 // EWMA of per-batch degree skew; <0 until measured
	heat      map[graph.VertexID]float64
	applied   int
	lastEvent int
}

func newRepartitioner(pol Policy) *repartitioner {
	return &repartitioner{pol: pol, skew: -1, heat: make(map[graph.VertexID]float64)}
}

// observe folds one routed batch's profile into the EWMAs.
func (rp *repartitioner) observe(b *graph.Batch) {
	rp.applied++
	a := rp.pol.alpha()
	p := graph.ProfileBatch(b, rp.pol.lambda())
	if p.Edges > 0 {
		if rp.skew < 0 {
			rp.skew = p.DegreeSkew
		} else {
			rp.skew = a*p.DegreeSkew + (1-a)*rp.skew
		}
	}
	for v, h := range rp.heat {
		h *= 1 - a
		if h < 0.05 {
			delete(rp.heat, v)
		} else {
			rp.heat[v] = h
		}
	}
	counts := make(map[graph.VertexID]int, len(b.Edges))
	for i := range b.Edges {
		counts[b.Edges[i].Dst]++
	}
	for v, c := range counts {
		rp.heat[v] += a * float64(c)
	}
}

// plan is one evaluated repartition decision.
type plan struct {
	from, to  int
	imbalance float64
	hold      bool
	verts     []graph.VertexID
	ranges    []Span
}

// evaluate checks the trigger and, past it, plans a migration. It
// returns nil when the gates (warm-up, cooldown, skew) are closed; a
// hold plan when heat is balanced; a migration plan otherwise.
// Deterministic: heat is accumulated and candidates picked in sorted
// vertex order, ties broken toward lower IDs.
func (rp *repartitioner) evaluate(shards int, owner func(graph.VertexID) int) *plan {
	if rp.applied < rp.pol.minBatches() || rp.applied-rp.lastEvent < rp.pol.cooldown() {
		return nil
	}
	if rp.skew < rp.pol.skewThreshold() || len(rp.heat) == 0 {
		return nil
	}
	type entry struct {
		v     graph.VertexID
		score float64
	}
	entries := make([]entry, 0, len(rp.heat))
	for v, h := range rp.heat {
		entries = append(entries, entry{v, h})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].v < entries[j].v })

	heat := make([]float64, shards)
	total := 0.0
	for _, e := range entries {
		heat[owner(e.v)] += e.score
		total += e.score
	}
	hottest, coolest := 0, 0
	for s := 1; s < shards; s++ {
		if heat[s] > heat[hottest] {
			hottest = s
		}
		if heat[s] < heat[coolest] {
			coolest = s
		}
	}
	rp.lastEvent = rp.applied
	mean := total / float64(shards)
	p := &plan{from: hottest, to: coolest, imbalance: heat[hottest] / mean}
	if p.imbalance < rp.pol.imbalanceRatio() || hottest == coolest {
		p.hold = true
		return p
	}
	cands := entries[:0]
	for _, e := range entries {
		if owner(e.v) == hottest {
			cands = append(cands, e)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	if n := rp.pol.maxMove(); len(cands) > n {
		cands = cands[:n]
	}
	for _, c := range cands {
		p.verts = append(p.verts, c.v)
	}
	sort.Slice(p.verts, func(i, j int) bool { return p.verts[i] < p.verts[j] })
	p.ranges = coalesce(p.verts)
	if len(p.ranges) == 0 {
		p.hold = true
	}
	return p
}

// clearHeat forgets migrated vertices so a fresh migration does not
// immediately ping-pong the same ranges back.
func (rp *repartitioner) clearHeat(verts []graph.VertexID) {
	for _, v := range verts {
		delete(rp.heat, v)
	}
}

// coalesce turns a sorted vertex list into contiguous inclusive
// ranges (the "hot vertex ranges" the migration reassigns).
func coalesce(verts []graph.VertexID) []Span {
	var out []Span
	for _, v := range verts {
		if n := len(out); n > 0 && out[n-1].Hi+1 == v {
			out[n-1].Hi = v
			continue
		}
		out = append(out, Span{Lo: v, Hi: v})
	}
	return out
}

// repartitionStep runs after a fully applied batch: it feeds the
// repartitioner and executes any triggered migration while every
// shard is quiescent. Both holds and migrations append a
// DecisionAudit (Controller "repart"), mirroring ABR/OCA's audit
// discipline.
func (r *Router) repartitionStep(b *graph.Batch) bool {
	rp := r.repart
	if rp.pol.Disabled {
		return false
	}
	rp.observe(b)
	if r.cfg.Shards < 2 {
		return false
	}
	p := rp.evaluate(r.cfg.Shards, r.ring.Owner)
	if p == nil {
		return false
	}
	audit := obs.DecisionAudit{
		Controller: "repart",
		BatchID:    b.ID,
		Input:      "shard_imbalance",
		Observed:   p.imbalance,
		Threshold:  rp.pol.imbalanceRatio(),
		Sampled:    true,
		Choice:     "hold",
	}
	migrated := false
	if !p.hold {
		start := time.Now()
		if err := r.migrate(p); err != nil {
			audit.Choice = fmt.Sprintf("migrate %d->%d failed: %v", p.from, p.to, err)
		} else {
			migrated = true
			rp.clearHeat(p.verts)
			audit.Choice = fmt.Sprintf("migrate %d->%d (%d vertices, %d ranges)",
				p.from, p.to, len(p.verts), len(p.ranges))
		}
		audit.RealizedNs = time.Since(start).Nanoseconds()
	}
	r.mu.Lock()
	r.audits = append(r.audits, audit)
	if migrated {
		r.moves++
	}
	r.mu.Unlock()
	return migrated
}

// migrate moves p's hot ranges from shard p.from to p.to through the
// snapshot save/restore path: drain and snapshot both shards, flip
// the ring overlay, then rebuild each side from the union of the two
// snapshots filtered by the new ownership. The union provably covers
// both new edge sets — a migrated vertex's complete adjacency lived
// in the old owner's store — and re-inserting a mirrored duplicate is
// an idempotent weight refresh, so the rebuilt stores are exactly the
// mirroring rule applied to the new assignment. latest_bid metadata
// does not survive the snapshot format; the sharded oracle checks it
// only on migration-free configurations.
func (r *Router) migrate(p *plan) error {
	src, dst := r.shards[p.from], r.shards[p.to]
	src.runner.Finish()
	dst.runner.Finish()

	var bufA, bufB bytes.Buffer
	if err := trace.WriteSnapshot(&bufA, src.runner.Store()); err != nil {
		return fmt.Errorf("snapshot shard %d: %w", p.from, err)
	}
	if err := trace.WriteSnapshot(&bufB, dst.runner.Store()); err != nil {
		return fmt.Errorf("snapshot shard %d: %w", p.to, err)
	}
	snapA, err := trace.ReadSnapshot(bytes.NewReader(bufA.Bytes()))
	if err != nil {
		return fmt.Errorf("restore shard %d: %w", p.from, err)
	}
	snapB, err := trace.ReadSnapshot(bytes.NewReader(bufB.Bytes()))
	if err != nil {
		return fmt.Errorf("restore shard %d: %w", p.to, err)
	}

	// Point of no return: everything below is infallible. Retire the
	// replaced runners' metrics so MetricsSnapshot stays cumulative.
	r.mu.Lock()
	r.retired = append(r.retired, src.runner.MetricsSnapshot().Batches...)
	r.retired = append(r.retired, dst.runner.MetricsSnapshot().Batches...)
	r.mu.Unlock()

	for _, sp := range p.ranges {
		r.ring.Assign(sp.Lo, sp.Hi, p.to)
	}

	for _, side := range [2]int{p.from, p.to} {
		st := graph.NewAdjacencyStore(r.cfg.Vertices)
		for _, snap := range []*graph.AdjacencyStore{snapA, snapB} {
			seedShard(st, snap, r.ring, side)
		}
		nr := pipeline.NewRunnerWithStore(r.pcfgs[side], st)
		if r.pressure != nil {
			nr.SetPressure(r.pressure)
		}
		r.shards[side].runner = nr
	}
	r.mu.Lock()
	r.edgesDirty = true
	r.mu.Unlock()
	return nil
}
