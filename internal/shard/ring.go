// Package shard partitions a streaming graph across N independent
// pipeline instances — the ROADMAP's "path from one box to millions of
// users". Vertices are assigned to shards by consistent hashing, and
// every edge is routed to the owner of *both* endpoints (mirrored once
// when they share an owner), so each shard's adjacency of its owned
// vertices is locally complete: per-vertex reads, scatter/gather
// analytics and snapshotting never need a remote lookup.
//
// A Router in front of the per-shard pipelines splits each incoming
// batch into per-shard sub-batches (preserving relative edge order and
// the batch's trace ID), fans them out concurrently behind each
// runner's panic-isolation boundary, and aggregates the per-shard
// metrics and robustness counters. On top of the static ring sits a
// dynamic repartitioner (repart.go): the same InputProfile statistics
// ABR collects drive an EWMA skew detector that migrates hot vertex
// ranges between shards through the snapshot save/restore path,
// emitting DecisionAudits like ABR/OCA do.
package shard

import (
	"sort"

	"streamgraph/internal/graph"
)

// DefaultReplicas is the number of virtual ring points per shard.
// Enough that the keyspace split is within a few percent of even for
// small shard counts, while keeping Owner's binary search tiny.
const DefaultReplicas = 64

// Span is one contiguous vertex-ID range reassigned away from its
// ring owner (inclusive bounds). The repartitioner migrates hot
// ranges by appending spans to the ring's overlay.
type Span struct {
	Lo, Hi graph.VertexID
	Shard  int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// Ring maps vertex IDs to shards: a consistent-hash ring of virtual
// points plus an overlay of reassigned ranges that takes precedence.
// Lookups are read-only and safe for concurrent use; Assign mutates
// and follows the sequential execution contract (no lookups in
// flight), like every store write in this repository.
type Ring struct {
	shards  int
	points  []ringPoint // sorted by hash
	overlay []Span      // sorted by Lo, non-overlapping
}

// NewRing builds a ring of shards × replicas virtual points.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		panic("shard: ring needs at least one shard")
	}
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	r := &Ring{shards: shards}
	r.points = make([]ringPoint, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for i := 0; i < replicas; i++ {
			h := splitmix64(uint64(s)<<32 | uint64(i)<<1 | 1)
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning vertex v: its overlay span if one
// covers v, its clockwise ring successor otherwise.
func (r *Ring) Owner(v graph.VertexID) int {
	if len(r.overlay) > 0 {
		i := sort.Search(len(r.overlay), func(i int) bool { return r.overlay[i].Hi >= v })
		if i < len(r.overlay) && r.overlay[i].Lo <= v {
			return r.overlay[i].Shard
		}
	}
	if r.shards == 1 {
		return 0
	}
	h := splitmix64(uint64(v))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Assign reassigns the inclusive range [lo, hi] to shard, splitting
// any overlapping prior spans so the overlay stays sorted and
// non-overlapping.
func (r *Ring) Assign(lo, hi graph.VertexID, shard int) {
	if hi < lo || shard < 0 || shard >= r.shards {
		panic("shard: bad range assignment")
	}
	out := make([]Span, 0, len(r.overlay)+2)
	for _, s := range r.overlay {
		if s.Hi < lo || s.Lo > hi {
			out = append(out, s)
			continue
		}
		if s.Lo < lo {
			out = append(out, Span{Lo: s.Lo, Hi: lo - 1, Shard: s.Shard})
		}
		if s.Hi > hi {
			out = append(out, Span{Lo: hi + 1, Hi: s.Hi, Shard: s.Shard})
		}
	}
	out = append(out, Span{Lo: lo, Hi: hi, Shard: shard})
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	r.overlay = out
}

// Assignments returns a copy of the reassigned-range overlay.
func (r *Ring) Assignments() []Span {
	return append([]Span(nil), r.overlay...)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// integer hash whose output is a pure function of its input, so shard
// ownership is deterministic across processes and replays.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
