package shard

import (
	"fmt"
	"sync"
	"time"

	"streamgraph/internal/graph"
	"streamgraph/internal/obs"
	"streamgraph/internal/pipeline"
)

// Config configures a Router.
type Config struct {
	// Shards is the pipeline-instance count (>= 1).
	Shards int
	// Replicas is the virtual ring points per shard; 0 means
	// DefaultReplicas.
	Replicas int
	// Vertices pre-sizes every shard's vertex space. All shards share
	// one vertex-ID space so merged analytics (and PageRank's 1/N
	// term) match the single-node reference exactly.
	Vertices int
	// Pipeline is the per-shard runner template. Compute must be nil
	// (analytics run as cluster-level scatter/gather drivers, not per
	// shard) and Epoch must be false (repartitioning migrates state
	// through the adjacency snapshot format).
	Pipeline pipeline.Config
	// PerShard, when non-nil, customizes one shard's config from the
	// template — e.g. a fault injector or shed ladder on a single
	// shard for differential tests.
	PerShard func(shard int, cfg pipeline.Config) pipeline.Config
	// Repartition tunes the dynamic repartitioner; the zero value
	// enables it with defaults, Policy{Disabled: true} turns it off.
	Repartition Policy
	// Seed, when non-nil, is an initial graph (a restored snapshot):
	// each shard starts with the seed edges incident to its owned
	// vertices.
	Seed *graph.AdjacencyStore
}

// Outcome reports one shard's part of an Apply.
type Outcome struct {
	// Shard is the shard index; Edges how many edge ops were routed
	// to it (0 means the shard was not involved in the batch).
	Shard int
	Edges int
	// Applied reports whether the sub-batch was ingested; Err carries
	// the recovered panic when it was not.
	Applied bool
	Err     error
}

// Result aggregates one routed batch across shards.
type Result struct {
	BatchID int
	// PerShard has one entry per shard, in shard order.
	PerShard []Outcome
	// Update is the slowest shard's update wall time (the fan-out is
	// concurrent, so the batch costs its critical path, not the sum).
	Update time.Duration
	// Reordered/Instrumented report whether any shard's ABR reordered
	// or instrumented its sub-batch; CAD and Locality are the maxima
	// across instrumented shards.
	Reordered    bool
	Instrumented bool
	CAD          float64
	Locality     float64
	// Locks and Comparisons sum the per-shard engine counters.
	Locks       int64
	Comparisons int64
	// Repartitioned reports that this batch's statistics triggered a
	// hot-range migration after the batch applied.
	Repartitioned bool
}

// shardState is one pipeline instance plus its routing counters. The
// counters are guarded by the owning Router's mu (written in Apply's
// single-threaded aggregation phase, copied by Report); the guardfield
// annotation cannot name a mutex across structs, so keep every access
// under r.mu by hand.
type shardState struct {
	runner  *pipeline.Runner
	batches int
	edges   int64
	panics  int
}

//sglint:pool fan-out workers join on wg.Wait before aggregation; per-shard panics are recovered inside ProcessBatchIsolated and surfaced as per-shard errors

// Router splits batches across per-shard pipelines and aggregates
// their results. Apply follows the repository's sequential execution
// contract (one batch in flight, reads between batches); Report,
// Audits and MetricsSnapshot are safe to call from any goroutine.
type Router struct {
	cfg      Config
	ring     *Ring
	shards   []*shardState
	pcfgs    []pipeline.Config // per-shard configs, kept for rebuilds
	repart   *repartitioner
	pressure func() float64

	// mu guards the aggregated counters, the decision-audit log, the
	// retired-runner metrics and the cached edge count; everything
	// else follows the sequential contract.
	mu      sync.Mutex
	audits  []obs.DecisionAudit     //sglint:guard mu
	moves   int                     //sglint:guard mu
	retired []pipeline.BatchMetrics //sglint:guard mu
	// cachedEdges memoizes the deduplicated edge count (NumEdges is
	// an O(vertices) sweep); edgesDirty invalidates it on writes.
	cachedEdges int  //sglint:guard mu
	edgesDirty  bool //sglint:guard mu
}

// New builds a router and its per-shard pipelines.
func New(cfg Config) *Router {
	if cfg.Shards < 1 {
		panic("shard: Config.Shards must be >= 1")
	}
	if cfg.Pipeline.Compute != nil {
		panic("shard: per-shard Compute must be nil; analytics run as cluster drivers")
	}
	if cfg.Pipeline.Epoch {
		panic("shard: per-shard Epoch mode is not supported; repartitioning migrates adjacency snapshots")
	}
	r := &Router{
		cfg:        cfg,
		ring:       NewRing(cfg.Shards, cfg.Replicas),
		shards:     make([]*shardState, cfg.Shards),
		pcfgs:      make([]pipeline.Config, cfg.Shards),
		repart:     newRepartitioner(cfg.Repartition),
		edgesDirty: true,
	}
	for i := range r.shards {
		pc := cfg.Pipeline
		if cfg.PerShard != nil {
			pc = cfg.PerShard(i, pc)
		}
		r.pcfgs[i] = pc
		st := graph.NewAdjacencyStore(cfg.Vertices)
		if cfg.Seed != nil {
			seedShard(st, cfg.Seed, r.ring, i)
		}
		r.shards[i] = &shardState{runner: pipeline.NewRunnerWithStore(pc, st)}
	}
	return r
}

// seedShard copies the seed edges incident to shard i's owned
// vertices into st (the mirroring rule, applied to a restored graph).
func seedShard(st *graph.AdjacencyStore, seed *graph.AdjacencyStore, ring *Ring, i int) {
	for v := 0; v < seed.NumVertices(); v++ {
		src := graph.VertexID(v)
		seed.ForEachOut(src, func(n graph.Neighbor) {
			if ring.Owner(src) == i || ring.Owner(n.ID) == i {
				st.InsertEdge(graph.Edge{Src: src, Dst: n.ID, Weight: n.Weight})
			}
		})
	}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.cfg.Shards }

// Owner returns the shard currently owning vertex v.
func (r *Router) Owner(v graph.VertexID) int { return r.ring.Owner(v) }

// ShardStore returns shard i's adjacency store (owned vertices carry
// complete adjacency; mirrored vertices only the edges shared with
// this shard). Sequential contract: read between batches.
func (r *Router) ShardStore(i int) *graph.AdjacencyStore { return r.shards[i].runner.Store() }

// SetPressure attaches the load-shed pressure source to every shard's
// runner (and to runners rebuilt by future migrations).
func (r *Router) SetPressure(f func() float64) {
	r.pressure = f
	for _, s := range r.shards {
		s.runner.SetPressure(f)
	}
}

// Split partitions a batch into per-shard edge slices under the
// mirroring rule: an edge goes to the owner of its source and, when
// different, the owner of its destination, preserving relative order
// within each slice. Slices index by shard; empty slices mean the
// shard is not involved.
func (r *Router) Split(b *graph.Batch) [][]graph.Edge {
	parts := make([][]graph.Edge, r.cfg.Shards)
	for _, e := range b.Edges {
		so := r.ring.Owner(e.Src)
		parts[so] = append(parts[so], e)
		if do := r.ring.Owner(e.Dst); do != so {
			parts[do] = append(parts[do], e)
		}
	}
	return parts
}

// Apply routes one batch: split, concurrent fan-out behind each
// shard's panic-isolation boundary, aggregate. Shards that panic
// leave their sub-batch unapplied (pre-mutation isolation) while the
// others proceed; because batch re-application is idempotent under
// the batch semantics contract, a caller may retry the whole batch.
// The returned error is the first failing shard's; Result.PerShard
// records exactly which shards accepted.
func (r *Router) Apply(b *graph.Batch) (Result, error) {
	parts := r.Split(b)
	res := Result{BatchID: b.ID, PerShard: make([]Outcome, r.cfg.Shards)}
	type reply struct {
		bm  pipeline.BatchMetrics
		err error
	}
	replies := make([]reply, r.cfg.Shards)
	var wg sync.WaitGroup
	for i := range r.shards {
		res.PerShard[i] = Outcome{Shard: i, Edges: len(parts[i])}
		if len(parts[i]) == 0 {
			res.PerShard[i].Applied = true // vacuously: nothing to apply
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sb := &graph.Batch{ID: b.ID, TraceID: b.TraceID, Edges: parts[i]}
			replies[i].bm, replies[i].err = r.shards[i].runner.ProcessBatchIsolated(sb)
		}(i)
	}
	wg.Wait()

	var firstErr error
	for i := range r.shards {
		if len(parts[i]) == 0 {
			continue
		}
		if err := replies[i].err; err != nil {
			res.PerShard[i].Err = err
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, err)
			}
			r.mu.Lock()
			r.shards[i].panics++
			r.mu.Unlock()
			continue
		}
		res.PerShard[i].Applied = true
		bm := replies[i].bm
		r.mu.Lock()
		r.shards[i].batches++
		r.shards[i].edges += int64(len(parts[i]))
		r.mu.Unlock()
		if bm.Update > res.Update {
			res.Update = bm.Update
		}
		res.Reordered = res.Reordered || bm.Reordered
		if bm.ABRActive {
			res.Instrumented = true
			if bm.CAD > res.CAD {
				res.CAD = bm.CAD
			}
		}
		if bm.Locality > res.Locality {
			res.Locality = bm.Locality
		}
		res.Locks += bm.Stats.Locks
		res.Comparisons += bm.Stats.Comparisons
	}
	r.mu.Lock()
	r.edgesDirty = true
	r.mu.Unlock()

	// Feed the repartitioner the whole batch's profile; a triggered
	// migration runs here, after the fan-out has fully drained, so the
	// affected runners are quiescent. Skip on a partial failure: the
	// caller will retry the batch and statistics should reflect
	// applied work.
	if firstErr == nil {
		res.Repartitioned = r.repartitionStep(b)
	}
	return res, firstErr
}

// Flush drains every shard behind the panic isolation boundary,
// returning the first failure.
func (r *Router) Flush() error {
	var firstErr error
	for i, s := range r.shards {
		if err := s.runner.FinishIsolated(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

// MetricsSnapshot merges the per-shard run metrics (including runners
// retired by migrations) into one RunMetrics. Per-batch entries
// appear once per involved shard — durations sum engine work across
// shards, the way RunMetrics sums work across batches.
func (r *Router) MetricsSnapshot() pipeline.RunMetrics {
	out := pipeline.RunMetrics{Policy: r.cfg.Pipeline.Policy}
	r.mu.Lock()
	out.Batches = append(out.Batches, r.retired...)
	r.mu.Unlock()
	for _, s := range r.shards {
		m := s.runner.MetricsSnapshot()
		out.Batches = append(out.Batches, m.Batches...)
	}
	return out
}

// NumVertices returns the merged vertex-space size.
func (r *Router) NumVertices() int {
	n := 0
	for _, s := range r.shards {
		if sn := s.runner.Store().NumVertices(); sn > n {
			n = sn
		}
	}
	return n
}

// NumEdges returns the deduplicated directed edge count: each edge is
// counted once, at the owner of its source (whose out-adjacency is
// complete). Cached between writes; the sweep is O(vertices).
func (r *Router) NumEdges() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.edgesDirty {
		return r.cachedEdges
	}
	total := 0
	for i, s := range r.shards {
		st := s.runner.Store()
		n := st.NumVertices()
		for v := 0; v < n; v++ {
			if r.ring.Owner(graph.VertexID(v)) == i {
				total += st.OutDegree(graph.VertexID(v))
			}
		}
	}
	r.cachedEdges, r.edgesDirty = total, false
	return total
}

// ShardInfo is one shard's census entry.
type ShardInfo struct {
	Shard int `json:"shard"`
	// Batches/Edges count routed sub-batches and edge ops; Panics the
	// recovered per-shard failures.
	Batches int   `json:"batches"`
	Edges   int64 `json:"edges"`
	Panics  int   `json:"panics"`
	// OwnedVertices/OwnedEdges census the shard's current ownership
	// (an O(vertices) sweep).
	OwnedVertices int `json:"ownedVertices"`
	OwnedEdges    int `json:"ownedEdges"`
}

// Report is the router's aggregate telemetry.
type Report struct {
	Shards        int         `json:"shards"`
	Repartitions  int         `json:"repartitions"`
	Reassignments []Span      `json:"-"`
	PerShard      []ShardInfo `json:"perShard"`
}

// Report censuses the cluster. Sequential contract for the ownership
// sweep (it reads live stores); the counters are lock-copied.
func (r *Router) Report() Report {
	rep := Report{Shards: r.cfg.Shards, Reassignments: r.ring.Assignments()}
	r.mu.Lock()
	rep.Repartitions = r.moves
	for i, s := range r.shards {
		rep.PerShard = append(rep.PerShard, ShardInfo{
			Shard: i, Batches: s.batches, Edges: s.edges, Panics: s.panics,
		})
	}
	r.mu.Unlock()
	for i, s := range r.shards {
		st := s.runner.Store()
		n := st.NumVertices()
		info := &rep.PerShard[i]
		for v := 0; v < n; v++ {
			if r.ring.Owner(graph.VertexID(v)) == i {
				if d := st.OutDegree(graph.VertexID(v)); d > 0 || st.InDegree(graph.VertexID(v)) > 0 {
					info.OwnedVertices++
					info.OwnedEdges += d
				}
			}
		}
	}
	return rep
}

// Audits returns a copy of the repartitioner's decision-audit log.
func (r *Router) Audits() []obs.DecisionAudit {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]obs.DecisionAudit(nil), r.audits...)
}

// Repartitions returns how many hot-range migrations have run.
func (r *Router) Repartitions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.moves
}
