package shard

import (
	"testing"

	"streamgraph/internal/gen"
	"streamgraph/internal/graph"
	"streamgraph/internal/pipeline"
)

func TestRingDeterministicAndTotal(t *testing.T) {
	r1 := NewRing(4, 0)
	r2 := NewRing(4, 0)
	counts := make([]int, 4)
	for v := 0; v < 20000; v++ {
		a, b := r1.Owner(graph.VertexID(v)), r2.Owner(graph.VertexID(v))
		if a != b {
			t.Fatalf("vertex %d: nondeterministic owner %d vs %d", v, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("vertex %d: owner %d out of range", v, a)
		}
		counts[a]++
	}
	// Consistent hashing with virtual nodes should split the keyspace
	// within a loose factor of even; a collapsed ring is a bug.
	for s, c := range counts {
		if c < 1000 {
			t.Fatalf("shard %d owns only %d of 20000 vertices: %v", s, c, counts)
		}
	}
}

func TestRingOverlayReassignment(t *testing.T) {
	r := NewRing(2, 0)
	base := r.Owner(100)
	other := 1 - base
	r.Assign(90, 110, other)
	if got := r.Owner(100); got != other {
		t.Fatalf("owner(100) after Assign = %d, want %d", got, other)
	}
	fresh := NewRing(2, 0)
	if r.Owner(89) != fresh.Owner(89) || r.Owner(111) != fresh.Owner(111) {
		t.Fatalf("overlay leaked outside its range")
	}
	// Splitting an existing span keeps the overlay consistent.
	r.Assign(95, 105, base)
	if got := r.Owner(100); got != base {
		t.Fatalf("owner(100) after re-assign = %d, want %d", got, base)
	}
	if got := r.Owner(92); got != other {
		t.Fatalf("owner(92) lost its earlier assignment: got %d, want %d", got, other)
	}
	if got := r.Owner(108); got != other {
		t.Fatalf("owner(108) lost its earlier assignment: got %d, want %d", got, other)
	}
}

func TestSplitMirrorsCrossShardEdges(t *testing.T) {
	r := New(Config{
		Shards:      4,
		Vertices:    256,
		Pipeline:    pipeline.Config{Policy: pipeline.Baseline, Workers: 1},
		Repartition: Policy{Disabled: true},
	})
	b := &graph.Batch{ID: 0}
	for v := 0; v < 128; v++ {
		b.Edges = append(b.Edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v * 7) % 256), Weight: 1})
	}
	parts := r.Split(b)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	for _, e := range b.Edges {
		so, do := r.Owner(e.Src), r.Owner(e.Dst)
		want := 1
		if so != do {
			want = 2
		}
		got := 0
		for _, p := range parts {
			for _, pe := range p {
				if pe == e {
					got++
				}
			}
		}
		if got != want {
			t.Fatalf("edge %v: routed %d times, want %d", e, got, want)
		}
	}
	if total < len(b.Edges) {
		t.Fatalf("split lost edges: %d routed < %d input", total, len(b.Edges))
	}
	// Relative order within each part must match the input order.
	for s, p := range parts {
		last := -1
		for _, pe := range p {
			idx := -1
			for i, e := range b.Edges {
				if e == pe && i > last {
					idx = i
					break
				}
			}
			if idx < 0 || idx <= last {
				t.Fatalf("shard %d: sub-batch order diverges from input order", s)
			}
			last = idx
		}
	}
}

func TestApplyAggregatesAndCountsEdges(t *testing.T) {
	r := New(Config{
		Shards:      2,
		Vertices:    64,
		Pipeline:    pipeline.Config{Policy: pipeline.ABRUSC, Workers: 1},
		Repartition: Policy{Disabled: true},
	})
	edges := []graph.Edge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
		{Src: 1, Dst: 3, Weight: 2},
		{Src: 5, Dst: 1, Weight: 1},
	}
	res, err := r.Apply(&graph.Batch{ID: 0, Edges: edges})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.BatchID != 0 || len(res.PerShard) != 2 {
		t.Fatalf("bad result shape: %+v", res)
	}
	if got := r.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4 (mirrored copies must not double-count)", got)
	}
	// Deleting an edge must be reflected once, globally.
	if _, err := r.Apply(&graph.Batch{ID: 1, Edges: []graph.Edge{{Src: 1, Dst: 3, Delete: true}}}); err != nil {
		t.Fatalf("Apply delete: %v", err)
	}
	if got := r.NumEdges(); got != 3 {
		t.Fatalf("NumEdges after delete = %d, want 3", got)
	}
	v := r.View()
	if !v.HasEdge(1, 2) || v.HasEdge(1, 3) {
		t.Fatalf("view adjacency wrong after delete")
	}
	if err := graph.CheckMirror(v); err != nil {
		t.Fatalf("mirror invariant on view: %v", err)
	}
}

func TestRepartitionMigratesHotRange(t *testing.T) {
	r := New(Config{
		Shards:   2,
		Vertices: 128,
		Pipeline: pipeline.Config{Policy: pipeline.Baseline, Workers: 1},
		Repartition: Policy{
			MinBatches:     2,
			Cooldown:       2,
			SkewThreshold:  0.05,
			ImbalanceRatio: 1.01,
			MaxMove:        4,
		},
	})
	// A single-hub stream: every edge targets vertex 7, so heat
	// concentrates entirely on 7's owner and the imbalance trigger
	// must fire.
	hub := graph.VertexID(7)
	before := r.Owner(hub)
	// Stop at the first migration: without clearing, the hub would
	// legitimately ping-pong back on later evaluations.
	for i := 0; i < 30 && r.Repartitions() == 0; i++ {
		var edges []graph.Edge
		for j := 0; j < 16; j++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(8 + (i*16+j)%100), Dst: hub, Weight: 1})
		}
		if _, err := r.Apply(&graph.Batch{ID: i, Edges: edges}); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	if r.Repartitions() == 0 {
		t.Fatalf("no repartition triggered by a single-hub stream; audits: %+v", r.Audits())
	}
	if got := r.Owner(hub); got == before {
		t.Fatalf("hub vertex %d still owned by shard %d after migration", hub, got)
	}
	if len(r.Audits()) == 0 {
		t.Fatalf("migration emitted no decision audit")
	}
	// State must survive the migration: the hub's full in-adjacency
	// lives at its new owner.
	v := r.View()
	if v.InDegree(hub) == 0 {
		t.Fatalf("hub lost its in-adjacency across the migration")
	}
	if err := graph.CheckMirror(v); err != nil {
		t.Fatalf("mirror invariant after migration: %v", err)
	}
}

func TestDriversMatchSingleNodeOnAdversarialStream(t *testing.T) {
	const verts = 200
	spec := gen.AdvSpec{Kind: gen.AdvMixed, Seed: 11, Vertices: verts, BatchSize: 60, Batches: 10}
	batches := spec.Generate()

	ref := graph.NewAdjacencyStore(verts)
	r := New(Config{
		Shards:      3,
		Vertices:    verts,
		Pipeline:    pipeline.Config{Policy: pipeline.ABRUSC, Workers: 1},
		Repartition: Policy{Disabled: true},
	})
	for _, b := range batches {
		applyMutable(ref, b)
		if _, err := r.Apply(b); err != nil {
			t.Fatalf("Apply %d: %v", b.ID, err)
		}
	}

	levels := r.BFSLevels(0)
	dist := r.SSSPDistances(0)
	labels := r.CCLabels()
	ranks := r.PageRanks(0, 8, 1e-300)

	refLevels := bfsRef(ref, 0)
	for v := 0; v < verts; v++ {
		if levels[v] != refLevels[v] {
			t.Fatalf("BFS level(%d) = %d, reference %d", v, levels[v], refLevels[v])
		}
	}
	refDist := ssspRef(ref, 0)
	for v := 0; v < verts; v++ {
		if dist[v] != refDist[v] {
			t.Fatalf("SSSP dist(%d) = %v, reference %v", v, dist[v], refDist[v])
		}
	}
	refLabels := ccRef(ref)
	for v := 0; v < verts; v++ {
		if labels[v] != refLabels[v] {
			t.Fatalf("CC label(%d) = %d, reference %d", v, labels[v], refLabels[v])
		}
	}
	refRanks := prRef(ref, 0.85, 8)
	for v := 0; v < verts; v++ {
		d := ranks[v] - refRanks[v]
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			t.Fatalf("PageRank(%d) = %v, reference %v", v, ranks[v], refRanks[v])
		}
	}
}
