package shard

import "streamgraph/internal/graph"

// View is the merged read-only graph over all shards, implementing
// graph.Store by routing every per-vertex read to the vertex's owner —
// whose adjacency is complete under the mirroring rule. It powers the
// server's /neighbors and snapshot endpoints, the scatter/gather
// drivers' sizing, and the sharded oracle target's state checks.
//
// The view is live: reads follow the sequential execution contract
// (between batches), like every non-epoch store in this repository.
type View struct {
	r *Router
}

// View returns the merged read view.
func (r *Router) View() *View { return &View{r: r} }

// storeFor returns the owner shard's store for v.
func (v *View) storeFor(u graph.VertexID) *graph.AdjacencyStore {
	return v.r.shards[v.r.ring.Owner(u)].runner.Store()
}

// NumVertices implements graph.Store.
func (v *View) NumVertices() int { return v.r.NumVertices() }

// NumEdges implements graph.Store: each edge counted once, at the
// owner of its source.
func (v *View) NumEdges() int { return v.r.NumEdges() }

// OutDegree implements graph.Store.
func (v *View) OutDegree(u graph.VertexID) int { return v.storeFor(u).OutDegree(u) }

// InDegree implements graph.Store.
func (v *View) InDegree(u graph.VertexID) int { return v.storeFor(u).InDegree(u) }

// ForEachOut implements graph.Store.
func (v *View) ForEachOut(u graph.VertexID, fn func(graph.Neighbor)) {
	v.storeFor(u).ForEachOut(u, fn)
}

// ForEachIn implements graph.Store.
func (v *View) ForEachIn(u graph.VertexID, fn func(graph.Neighbor)) {
	v.storeFor(u).ForEachIn(u, fn)
}

// HasEdge implements graph.Store, answered by the source's owner.
func (v *View) HasEdge(src, dst graph.VertexID) bool {
	return v.storeFor(src).HasEdge(src, dst)
}

// LatestBID returns the last batch ID in which u appeared, read from
// u's owner — which receives every edge incident to u under the
// mirroring rule, so its latest_bid matches the single-node value.
// Migrations rebuild stores from snapshots, which do not carry
// latest_bid; the field is only meaningful on migration-free runs.
func (v *View) LatestBID(u graph.VertexID) int32 {
	return v.storeFor(u).LatestBID(u)
}
