package sim

// cache is a set-associative LRU tag array. It is purely functional
// (presence tracking); latency accounting lives in Machine.
type cache struct {
	sets    int
	ways    int
	tags    []uint64 // sets*ways entries; 0 = invalid
	lruTick []uint64 // per-entry last-touch tick
	tick    uint64
}

func newCache(sizeKB, ways, lineBytes int) *cache {
	lines := sizeKB * 1024 / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	return &cache{
		sets:    sets,
		ways:    ways,
		tags:    make([]uint64, sets*ways),
		lruTick: make([]uint64, sets*ways),
	}
}

// key encodes a line so that 0 can mean "invalid".
func cacheKey(line uint64) uint64 { return line + 1 }

// lookup reports whether line is present, refreshing LRU on hit.
func (c *cache) lookup(line uint64) bool {
	set := int(line % uint64(c.sets))
	base := set * c.ways
	k := cacheKey(line)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == k {
			c.tick++
			c.lruTick[i] = c.tick
			return true
		}
	}
	return false
}

// insert fills line, evicting the LRU way. It does not check for an
// existing copy; callers insert only after a lookup miss.
func (c *cache) insert(line uint64) {
	set := int(line % uint64(c.sets))
	base := set * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == 0 {
			victim = i
			break
		}
		if c.lruTick[i] < c.lruTick[victim] {
			victim = i
		}
	}
	c.tick++
	c.tags[victim] = cacheKey(line)
	c.lruTick[victim] = c.tick
}

// invalidate removes line if present, returning whether it was.
func (c *cache) invalidate(line uint64) bool {
	set := int(line % uint64(c.sets))
	base := set * c.ways
	k := cacheKey(line)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == k {
			c.tags[i] = 0
			return true
		}
	}
	return false
}
