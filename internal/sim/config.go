// Package sim is a cycle-approximate model of the paper's simulated
// baseline architecture (Table 1): a 16-core 2.5GHz CPU with private
// L1/L2 caches, a NUCA L3 sliced across tiles, a 4x4 mesh NoC with
// XY routing, and 4 DRAM controllers.
//
// Substitution note (DESIGN.md §3): the paper evaluates HAU on
// Sniper-7.2. No full-system simulator is available here, so this
// package models the same machine at the granularity the paper's
// results depend on: per-access cache-hierarchy latency with
// functional LRU tag arrays, ownership-transfer penalties for
// cross-core writes (lock ping-pong), mesh hop latency with per-link
// queueing and serialization, and DRAM queue delay. Cores keep local
// clocks; shared resources arbitrate through next-free times, the
// standard approximation for trace-driven models. Both the software
// update and HAU run on the same machine model, so their *relative*
// performance — what Table 3 and Figs. 15/19/20 report — is
// preserved even though absolute cycle counts are approximate.
//
// The model is deterministic and single-threaded: a Machine must not
// be used from multiple goroutines.
package sim

// AccessKind distinguishes memory operations.
type AccessKind int

const (
	// Read is a load.
	Read AccessKind = iota
	// Write is a store (acquires line ownership, invalidating other
	// private copies).
	Write
	// Atomic is a read-modify-write (lock acquisition/release); it
	// behaves like Write plus a serialization penalty.
	Atomic
)

// Config describes the simulated machine. All latencies are in core
// cycles. The zero value is not useful; start from DefaultConfig.
type Config struct {
	// Cores is the core/tile count (Table 1: 16).
	Cores int
	// FreqGHz is the core frequency (2.5), used to convert ns.
	FreqGHz float64
	// IssueWidth is instructions per cycle (4-issue).
	IssueWidth int

	// LineBytes is the cacheline size (64).
	LineBytes int

	// L1KB/L1Ways/L1Lat describe the private L1D (32KB, 8-way, 3cyc).
	L1KB, L1Ways, L1Lat int
	// L2KB/L2Ways/L2Lat describe the private L2 (256KB, 8-way, 8cyc).
	L2KB, L2Ways, L2Lat int
	// L3SliceKB/L3Slices/L3Ways/L3Lat describe the NUCA L3. The
	// default is one 1MB slice per tile (16MB total, 16-way, 8-cycle
	// bank); the paper words it as "2MB slices" over the same 16MB —
	// per-tile slices preserve the total capacity and make the
	// local-tile NUCA behaviour (Fig. 20) expressible.
	L3SliceKB, L3Slices, L3Ways, L3Lat int

	// MeshW/MeshH is the mesh geometry (4x4); HopLat the per-hop
	// latency (2); LinkBytesPerCycle the per-link per-direction
	// bandwidth (256 bits/cycle = 32 B/cycle).
	MeshW, MeshH, HopLat, LinkBytesPerCycle int

	// MemControllers (4), MemLatNs device access latency (40ns) and
	// MemBWGBs per-controller bandwidth (17GB/s). Queue delay is
	// modeled per controller.
	MemControllers int
	MemLatNs       float64
	MemBWGBs       float64

	// AtomicPenalty is the extra serialization cost of an Atomic
	// access beyond a Write (pipeline drain + RMW).
	AtomicPenalty float64
}

// DefaultConfig returns the Table 1 machine.
func DefaultConfig() Config {
	return Config{
		Cores:      16,
		FreqGHz:    2.5,
		IssueWidth: 4,
		LineBytes:  64,
		L1KB:       32, L1Ways: 8, L1Lat: 3,
		L2KB: 256, L2Ways: 8, L2Lat: 8,
		L3SliceKB: 1024, L3Slices: 16, L3Ways: 16, L3Lat: 8,
		MeshW: 4, MeshH: 4, HopLat: 2, LinkBytesPerCycle: 32,
		MemControllers: 4, MemLatNs: 40, MemBWGBs: 17,
		AtomicPenalty: 15,
	}
}

// memLatCycles converts the DRAM device latency to cycles.
func (c Config) memLatCycles() float64 { return c.MemLatNs * c.FreqGHz }

// memBytesPerCycle is per-controller DRAM bandwidth in bytes/cycle.
func (c Config) memBytesPerCycle() float64 { return c.MemBWGBs / c.FreqGHz }
