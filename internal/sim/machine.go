package sim

// CoreStats aggregates one core's activity. Lines are attributed to
// the accessing core; packets to the sending core.
type CoreStats struct {
	// L1Hits/L2Hits/L3Hits/MemAccesses classify where each line
	// access was served.
	L1Hits, L2Hits, L3Hits, MemAccesses int64
	// LinesAccessed is the total cacheline accesses.
	LinesAccessed int64
	// LocalLines were served within the core's own tile (private
	// cache hit or home L3 slice on this tile); RemoteLines crossed
	// the mesh.
	LocalLines, RemoteLines int64
	// Packets and PacketCycles aggregate NoC traffic originated by
	// this core (mesh traversals; PacketCycles counts network transit
	// time, so PacketCycles/Packets is the average packet latency).
	Packets      int64
	PacketCycles float64
	// Invalidations counts ownership transfers this core triggered by
	// writing lines another core owned.
	Invalidations int64
}

// AvgPacketLatency returns the mean NoC packet latency in cycles.
func (s CoreStats) AvgPacketLatency() float64 {
	if s.Packets == 0 {
		return 0
	}
	return s.PacketCycles / float64(s.Packets)
}

// Machine is the simulated multicore. Cores keep caller-managed local
// clocks (cycle floats passed through Access/Send); the machine
// tracks shared-resource contention and statistics. Not safe for
// concurrent use.
type Machine struct {
	cfg Config

	l1, l2 []*cache
	l3     []*cache // one per slice

	// memFree[core][controller] is each core's next-free cycle at
	// each DRAM controller: a core's own bursts queue behind
	// themselves. Cross-core DRAM contention is not modeled (core
	// clocks are local, so a shared queue would convert clock skew
	// into phantom waits); utilization in the evaluated workloads is
	// low enough that self-queueing dominates.
	memFree [][]float64

	owner map[uint64]int32 // last writing core per line, for transfers

	// home holds each line's NUCA home slice, assigned on first L3
	// fill to the requesting core's nearest slice (first-touch
	// D-NUCA placement: data lives in the tile that uses it). Lines
	// never touched fall back to address interleaving.
	home map[uint64]int8

	stats []CoreStats
}

// New builds a machine for cfg.
func New(cfg Config) *Machine {
	m := &Machine{cfg: cfg, owner: make(map[uint64]int32), home: make(map[uint64]int8)}
	for i := 0; i < cfg.Cores; i++ {
		m.l1 = append(m.l1, newCache(cfg.L1KB, cfg.L1Ways, cfg.LineBytes))
		m.l2 = append(m.l2, newCache(cfg.L2KB, cfg.L2Ways, cfg.LineBytes))
	}
	for i := 0; i < cfg.L3Slices; i++ {
		m.l3 = append(m.l3, newCache(cfg.L3SliceKB, cfg.L3Ways, cfg.LineBytes))
	}
	m.memFree = make([][]float64, cfg.Cores)
	for i := range m.memFree {
		m.memFree[i] = make([]float64, cfg.MemControllers)
	}
	m.stats = make([]CoreStats, cfg.Cores)
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns a copy of the per-core statistics.
func (m *Machine) Stats() []CoreStats {
	out := make([]CoreStats, len(m.stats))
	copy(out, m.stats)
	return out
}

// CoreStat returns a copy of one core's statistics.
func (m *Machine) CoreStat(core int) CoreStats { return m.stats[core] }

// ResetStats zeroes the statistics, keeping cache and timing state.
func (m *Machine) ResetStats() {
	for i := range m.stats {
		m.stats[i] = CoreStats{}
	}
}

// ResetClock rewinds the shared-resource next-free times to zero.
// Callers that restart their core clocks at zero for a new phase
// (e.g. a new input batch) must rewind the resources too, or stale
// future timestamps masquerade as queueing delay. Cache contents
// survive: only timing state is reset.
func (m *Machine) ResetClock() {
	for i := range m.memFree {
		for j := range m.memFree[i] {
			m.memFree[i][j] = 0
		}
	}
}

// Instr advances a core clock by n instructions at the issue width.
func (m *Machine) Instr(t float64, n int) float64 {
	return t + float64(n)/float64(m.cfg.IssueWidth)
}

// sliceTile returns the tile hosting L3 slice i. Slices spread evenly
// across the tile grid.
func (m *Machine) sliceTile(slice int) int {
	return slice * m.cfg.Cores / m.cfg.L3Slices
}

// homeSlice returns a line's NUCA home slice: the first-touch
// assignment when one exists, address interleaving otherwise.
func (m *Machine) homeSlice(line uint64) int {
	if h, ok := m.home[line]; ok {
		return int(h)
	}
	return int(line % uint64(m.cfg.L3Slices))
}

// nearestSlice returns the L3 slice co-located with (or closest to)
// the given tile.
func (m *Machine) nearestSlice(tile int) int {
	s := tile * m.cfg.L3Slices / m.cfg.Cores
	if s >= m.cfg.L3Slices {
		s = m.cfg.L3Slices - 1
	}
	return s
}

// route sends one packet of the given payload size from tile a to
// tile b with XY routing. Wormhole switching: per-hop head latency
// plus one serialization of the payload over the link bandwidth.
// Returns the arrival time and records packet stats against statCore.
func (m *Machine) route(statCore, a, b int, bytes int, t float64) float64 {
	start := t
	if a != b {
		hops := m.HopDistance(a, b)
		ser := float64(bytes) / float64(m.cfg.LinkBytesPerCycle)
		t += float64(hops*m.cfg.HopLat) + ser
	}
	st := &m.stats[statCore]
	st.Packets++
	st.PacketCycles += t - start
	return t
}

// Send transmits a point-to-point message (e.g. an HAU update task)
// from core a to core b, returning its arrival time.
func (m *Machine) Send(a, b, bytes int, t float64) float64 {
	return m.route(a, a, b, bytes, t)
}

// Access performs one memory access by core at local time t and
// returns the completion time. It walks L1 → L2 → home L3 slice →
// DRAM, modeling mesh transit for non-local levels, and ownership
// transfer for writes to lines last written by another core.
func (m *Machine) Access(core int, addr uint64, kind AccessKind, t float64) float64 {
	cfg := &m.cfg
	line := addr / uint64(cfg.LineBytes)
	st := &m.stats[core]
	st.LinesAccessed++

	write := kind == Write || kind == Atomic
	if kind == Atomic {
		t += cfg.AtomicPenalty
	}

	// Ownership transfer: writing a line last written elsewhere
	// invalidates the previous owner's private copies and pays a
	// coherence round trip to its tile.
	if write {
		if o, ok := m.owner[line]; ok && int(o) != core {
			m.l1[o].invalidate(line)
			m.l2[o].invalidate(line)
			st.Invalidations++
			// Invalidation request + ack through the home slice.
			home := m.sliceTile(m.homeSlice(line))
			t = m.route(core, core, home, 16, t)
			t = m.route(core, home, int(o), 16, t)
			t = m.route(core, int(o), core, 16, t)
			// The local copy (if any) is stale after a remote write;
			// force a refetch below.
			m.l1[core].invalidate(line)
			m.l2[core].invalidate(line)
		}
		m.owner[line] = int32(core)
	}

	if m.l1[core].lookup(line) {
		st.L1Hits++
		st.LocalLines++
		return t + float64(cfg.L1Lat)
	}
	t += float64(cfg.L1Lat) // L1 probe
	if m.l2[core].lookup(line) {
		st.L2Hits++
		st.LocalLines++
		m.l1[core].insert(line)
		return t + float64(cfg.L2Lat)
	}
	t += float64(cfg.L2Lat) // L2 probe

	slice := m.homeSlice(line)
	home := m.sliceTile(slice)
	local := home == core
	if local {
		st.LocalLines++
	} else {
		st.RemoteLines++
		t = m.route(core, core, home, 16, t) // request
	}
	t += float64(cfg.L3Lat)
	if m.l3[slice].lookup(line) {
		st.L3Hits++
	} else {
		// First-touch placement: on a fill from memory, the line's
		// home moves to the requester's nearest slice.
		if ns := m.nearestSlice(core); ns != slice {
			slice = ns
			m.home[line] = int8(ns)
		}
		// DRAM: queue behind this core's own outstanding requests at
		// the line's controller, then the device access.
		mc := int(line % uint64(cfg.MemControllers))
		if f := m.memFree[core][mc]; f > t {
			t = f
		}
		ser := float64(cfg.LineBytes) / cfg.memBytesPerCycle()
		m.memFree[core][mc] = t + ser
		t += cfg.memLatCycles()
		st.MemAccesses++
		m.l3[slice].insert(line)
	}
	if !local {
		t = m.route(core, home, core, cfg.LineBytes, t) // data reply
	}
	m.l2[core].insert(line)
	m.l1[core].insert(line)
	return t
}

// Tile returns the mesh tile of a core (identity: one core per tile).
func (m *Machine) Tile(core int) int { return core }

// HopDistance returns the XY hop count between two tiles.
func (m *Machine) HopDistance(a, b int) int {
	w := m.cfg.MeshW
	dx := a%w - b%w
	if dx < 0 {
		dx = -dx
	}
	dy := a/w - b/w
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}
