package sim

import (
	"testing"
	"testing/quick"
)

func TestCacheLRU(t *testing.T) {
	c := newCache(1, 2, 64) // 1KB, 2-way, 64B lines → 8 sets, 16 lines
	if c.sets != 8 || c.ways != 2 {
		t.Fatalf("geometry: %d sets, %d ways", c.sets, c.ways)
	}
	// Fill one set (lines 0 and 8 map to set 0).
	if c.lookup(0) {
		t.Fatal("cold lookup hit")
	}
	c.insert(0)
	c.insert(8)
	if !c.lookup(0) || !c.lookup(8) {
		t.Fatal("inserted lines missing")
	}
	// Touch 0 (MRU), insert 16 → evicts 8 (LRU).
	c.lookup(0)
	c.insert(16)
	if !c.lookup(0) {
		t.Fatal("MRU line evicted")
	}
	if c.lookup(8) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.lookup(16) {
		t.Fatal("new line missing")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache(1, 2, 64)
	c.insert(5)
	if !c.invalidate(5) {
		t.Fatal("invalidate of present line failed")
	}
	if c.lookup(5) {
		t.Fatal("line present after invalidate")
	}
	if c.invalidate(5) {
		t.Fatal("double invalidate succeeded")
	}
}

// TestCacheNeverExceedsCapacity is the MSHR/capacity invariant from
// DESIGN.md §5, applied to the tag arrays.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	f := func(lines []uint16) bool {
		c := newCache(1, 2, 64)
		for _, l := range lines {
			if !c.lookup(uint64(l)) {
				c.insert(uint64(l))
			}
		}
		count := 0
		for _, tag := range c.tags {
			if tag != 0 {
				count++
			}
		}
		return count <= c.sets*c.ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopDistance(t *testing.T) {
	m := New(DefaultConfig())
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6},
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.HopDistance(c.a, c.b); got != c.want {
			t.Errorf("HopDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteLatencyScalesWithDistance(t *testing.T) {
	m := New(DefaultConfig())
	near := m.Send(0, 1, 16, 0)
	m2 := New(DefaultConfig())
	far := m2.Send(0, 15, 16, 0)
	if far <= near {
		t.Fatalf("far route %v not slower than near %v", far, near)
	}
	// Self-send has zero transit.
	m3 := New(DefaultConfig())
	if got := m3.Send(2, 2, 16, 5); got != 5 {
		t.Fatalf("self send advanced time: %v", got)
	}
}

func TestLinkSerialization(t *testing.T) {
	m := New(DefaultConfig())
	small := m.Send(0, 3, 16, 0)
	big := m.Send(0, 3, 256, 0) // larger payload serializes longer
	if big <= small {
		t.Fatalf("large packet (%v) not slower than small (%v)", big, small)
	}
}

func TestAccessHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	const addr = 0x1000_0000

	// Cold access: miss everywhere → DRAM latency at least.
	t1 := m.Access(0, addr, Read, 0)
	if t1 < cfg.memLatCycles() {
		t.Fatalf("cold access %v cycles, expected ≥ DRAM latency %v", t1, cfg.memLatCycles())
	}
	st := m.Stats()[0]
	if st.MemAccesses != 1 || st.LinesAccessed != 1 {
		t.Fatalf("stats after cold access: %+v", st)
	}

	// Warm access: L1 hit at exactly L1 latency.
	t2 := m.Access(0, addr, Read, 0) - 0
	if t2 != float64(cfg.L1Lat) {
		t.Fatalf("warm L1 access = %v, want %v", t2, cfg.L1Lat)
	}
	if m.Stats()[0].L1Hits != 1 {
		t.Fatal("L1 hit not recorded")
	}

	// Another core reading the same line: misses privately, hits L3.
	t3 := m.Access(5, addr, Read, 0)
	st5 := m.Stats()[5]
	if st5.L3Hits != 1 {
		t.Fatalf("expected L3 hit for core 5: %+v", st5)
	}
	if t3 >= t1 {
		t.Fatalf("L3 hit (%v) should beat DRAM access (%v)", t3, t1)
	}
}

func TestOwnershipTransferPingPong(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	const addr = 0x2000_0000
	// Core 0 writes (cold), then hits locally on rewrite.
	m.Access(0, addr, Write, 0)
	warm := m.Access(0, addr, Write, 0)
	// Core 9 writes the same line: must pay the transfer.
	stolen := m.Access(9, addr, Write, 0)
	if stolen <= warm {
		t.Fatalf("ownership steal (%v) not slower than local rewrite (%v)", stolen, warm)
	}
	if m.Stats()[9].Invalidations != 1 {
		t.Fatalf("invalidation not recorded: %+v", m.Stats()[9])
	}
	// Core 0's copy was invalidated: next read misses L1.
	before := m.Stats()[0].L1Hits
	m.Access(0, addr, Read, 0)
	if m.Stats()[0].L1Hits != before {
		t.Fatal("core 0 hit L1 on an invalidated line")
	}
}

func TestAtomicCostsMoreThanWrite(t *testing.T) {
	m1 := New(DefaultConfig())
	m1.Access(0, 0x3000, Write, 0)
	w := m1.Access(0, 0x3000, Write, 0)
	a := m1.Access(0, 0x3000, Atomic, 0)
	if a <= w {
		t.Fatalf("atomic (%v) not slower than write (%v)", a, w)
	}
}

func TestMemorySelfQueueDelay(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// Two cold accesses by the same core mapping to the same
	// controller back to back: the second queues behind the first's
	// burst. Lines k and k+8 (with 8 L3 slices and 4 controllers)
	// share controller k%4.
	stride := uint64(cfg.MemControllers * 2)
	a := m.Access(0, 0, Read, 0)
	b := m.Access(0, stride*uint64(cfg.LineBytes), Read, 0)
	_ = a
	solo := New(cfg).Access(0, stride*uint64(cfg.LineBytes), Read, 0)
	if b <= solo {
		t.Fatalf("queued access (%v) not slower than solo (%v)", b, solo)
	}
}

func TestInstr(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.Instr(10, 8); got != 12 { // 8 instrs / 4-issue = 2 cycles
		t.Fatalf("Instr = %v, want 12", got)
	}
}

func TestStatsResetAndCopy(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 0x99, Read, 0)
	s := m.Stats()
	s[0].L1Hits = 777 // must not leak back
	if m.Stats()[0].L1Hits == 777 {
		t.Fatal("Stats returned internal slice")
	}
	m.ResetStats()
	if m.Stats()[0].LinesAccessed != 0 {
		t.Fatal("ResetStats did not clear")
	}
	// Cache state survives reset: warm access is still an L1 hit.
	m.Access(0, 0x99, Read, 0)
	if m.Stats()[0].L1Hits != 1 {
		t.Fatal("cache state lost across ResetStats")
	}
}

func TestAvgPacketLatency(t *testing.T) {
	var s CoreStats
	if s.AvgPacketLatency() != 0 {
		t.Fatal("empty AvgPacketLatency should be 0")
	}
	s.Packets = 2
	s.PacketCycles = 10
	if s.AvgPacketLatency() != 5 {
		t.Fatal("AvgPacketLatency arithmetic")
	}
}

func TestSliceTileSpread(t *testing.T) {
	m := New(DefaultConfig())
	seen := map[int]bool{}
	for s := 0; s < m.cfg.L3Slices; s++ {
		tile := m.sliceTile(s)
		if tile < 0 || tile >= m.cfg.Cores {
			t.Fatalf("slice %d on invalid tile %d", s, tile)
		}
		if seen[tile] {
			t.Fatalf("two slices on tile %d", tile)
		}
		seen[tile] = true
	}
}
