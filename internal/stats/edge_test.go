package stats

import "testing"

// Edge-case coverage for Percentile: empty, single-element, and
// all-equal inputs across the p0/p50/p99/p100 probe points, plus
// input immutability.
func TestPercentileEmpty(t *testing.T) {
	for _, p := range []float64{0, 50, 99, 100} {
		if v := Percentile(nil, p); v != 0 {
			t.Fatalf("Percentile(nil, %v) = %v, want 0", p, v)
		}
		if v := Percentile([]float64{}, p); v != 0 {
			t.Fatalf("Percentile([], %v) = %v, want 0", p, v)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 99, 100} {
		if v := Percentile([]float64{42}, p); v != 42 {
			t.Fatalf("Percentile([42], %v) = %v, want 42", p, v)
		}
	}
}

func TestPercentileAllEqual(t *testing.T) {
	xs := []float64{7, 7, 7, 7, 7, 7, 7}
	for _, p := range []float64{0, 50, 99, 100} {
		if v := Percentile(xs, p); v != 7 {
			t.Fatalf("Percentile(all-7, %v) = %v, want 7", p, v)
		}
	}
}

func TestPercentileProbePoints(t *testing.T) {
	// 1..100: closest-rank interpolation on 100 points.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(100 - i) // reverse order: Percentile must sort
	}
	cases := []struct{ p, want float64 }{
		{0, 1},
		{50, 50.5},
		{99, 99.01},
		{100, 100},
	}
	for _, c := range cases {
		if v := Percentile(xs, c.p); !close2(v, c.want) {
			t.Fatalf("p%v = %v, want %v", c.p, v, c.want)
		}
	}
	// Out-of-range probes clamp.
	if v := Percentile(xs, -5); v != 1 {
		t.Fatalf("p-5 = %v, want 1", v)
	}
	if v := Percentile(xs, 250); v != 100 {
		t.Fatalf("p250 = %v, want 100", v)
	}
	// Input untouched (still reverse-sorted).
	if xs[0] != 100 || xs[99] != 1 {
		t.Fatal("Percentile mutated its input")
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
