package stats

// RunShape summarizes a batch's per-vertex destination run lengths as
// recorded by the reordered update path (update.Stats.DstRunLens):
// the mean run length and the longest run. The longest run divided by
// the batch size is the batch's degree skew — the share of the batch
// aimed at its single hottest vertex, the quantity that predicts lock
// convoys on the baseline engine.
func RunShape(lens []int) (mean float64, max int) {
	if len(lens) == 0 {
		return 0, 0
	}
	total := 0
	for _, l := range lens {
		total += l
		if l > max {
			max = l
		}
	}
	return float64(total) / float64(len(lens)), max
}
