// Package stats provides the small statistical helpers used throughout the
// benchmark harness and the adaptive controllers: geometric and arithmetic
// means, percentiles, and degree histograms over input batches.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. Non-positive values are
// ignored (a speedup of zero or below is meaningless); an empty or
// all-ignored input yields 0.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Histogram counts occurrences of integer-valued observations, used for
// batch degree distributions N(k).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value k.
func (h *Histogram) Add(k int) { h.AddN(k, 1) }

// AddN records n observations of value k.
func (h *Histogram) AddN(k, n int) {
	h.counts[k] += n
	h.total += n
}

// Count returns the number of observations with value k.
func (h *Histogram) Count(k int) int { return h.counts[k] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns P(k): the fraction of observations with value k.
func (h *Histogram) Fraction(k int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[k]) / float64(h.total)
}

// Keys returns the observed values in ascending order.
func (h *Histogram) Keys() []int {
	ks := make([]int, 0, len(h.counts))
	for k := range h.counts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// MaxKey returns the largest observed value, or 0 if empty.
func (h *Histogram) MaxKey() int {
	m := 0
	for k := range h.counts {
		if k > m {
			m = k
		}
	}
	return m
}

// TopKeys returns the n largest observed values in descending order
// (fewer if the histogram has fewer distinct values).
func (h *Histogram) TopKeys(n int) []int {
	ks := h.Keys()
	out := make([]int, 0, n)
	for i := len(ks) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, ks[i])
	}
	return out
}

// Bucket describes a half-open degree range [Lo, Hi] used by the Fig. 5
// style stacked distribution views.
type Bucket struct {
	Lo, Hi int
	Label  string
}

// Share returns the fraction of observations, weighted by the value
// itself (i.e. the share of *edges* originating from vertices whose
// degree falls in the bucket), matching Fig. 5's y-axis.
func (h *Histogram) Share(b Bucket) float64 {
	edges := 0
	totalEdges := 0
	for k, c := range h.counts {
		totalEdges += k * c
		if k >= b.Lo && k <= b.Hi {
			edges += k * c
		}
	}
	if totalEdges == 0 {
		return 0
	}
	return float64(edges) / float64(totalEdges)
}

// FormatRatio renders a speedup ratio the way the paper does: two
// decimals with a trailing x, e.g. "2.70x".
func FormatRatio(r float64) string {
	return fmt.Sprintf("%.2fx", r)
}
