package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
		{[]float64{4}, 4},
		{[]float64{0, -1}, 0},    // ignored values
		{[]float64{0, 2, 8}, 4},  // zero ignored
		{[]float64{0.5, 2}, 1.0}, // reciprocal pair
	}
	for _, c := range cases {
		if got := Geomean(c.in); !almostEqual(got, c.want) {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); !almostEqual(got, 2.8) {
		t.Errorf("Mean = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice cases should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	// Does not mutate input.
	ys := []float64{5, 1}
	Percentile(ys, 50)
	if ys[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.AddN(7, 3)
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(7) != 3 || h.Count(2) != 0 {
		t.Fatal("bad counts")
	}
	if !almostEqual(h.Fraction(1), 0.4) {
		t.Fatalf("Fraction(1) = %v", h.Fraction(1))
	}
	if h.MaxKey() != 7 {
		t.Fatalf("MaxKey = %d", h.MaxKey())
	}
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 7 {
		t.Fatalf("Keys = %v", keys)
	}
	top := h.TopKeys(5)
	if len(top) != 2 || top[0] != 7 || top[1] != 1 {
		t.Fatalf("TopKeys = %v", top)
	}
}

func TestHistogramShare(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 10) // 10 edges from degree-1 vertices
	h.AddN(10, 1) // 10 edges from a degree-10 vertex
	if got := h.Share(Bucket{Lo: 1, Hi: 1}); !almostEqual(got, 0.5) {
		t.Fatalf("Share(deg=1) = %v", got)
	}
	if got := h.Share(Bucket{Lo: 2, Hi: 100}); !almostEqual(got, 0.5) {
		t.Fatalf("Share(2..100) = %v", got)
	}
	empty := NewHistogram()
	if empty.Share(Bucket{Lo: 0, Hi: 10}) != 0 {
		t.Fatal("empty histogram share should be 0")
	}
}

func TestGeomeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) && v < 1e100 {
				xs = append(xs, v+1e-6)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramTotalsConsistent(t *testing.T) {
	// Property: sum of fractions over keys is 1 for non-empty histograms.
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int(v))
		}
		sum := 0.0
		for _, k := range h.Keys() {
			sum += h.Fraction(k)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatRatio(t *testing.T) {
	if got := FormatRatio(2.7); got != "2.70x" {
		t.Fatalf("FormatRatio = %q", got)
	}
}
