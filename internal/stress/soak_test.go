package stress

import (
	"os"
	"testing"
	"time"

	"streamgraph"
	"streamgraph/internal/fault"
	"streamgraph/internal/gen"
)

// soakSchedules are the fault schedules TestSoak cycles through: pure
// latency pressure, deterministic panics on both pipeline stages, and
// everything at once. Panic cadences are prime and > 1 so retries
// re-arm and eventually pass.
func soakSchedules() []struct {
	name string
	spec fault.Spec
} {
	return []struct {
		name string
		spec fault.Spec
	}{
		{"latency", fault.Spec{
			Seed: 101, LatencyEvery: 2, Latency: 2 * time.Millisecond,
		}},
		{"panics", fault.Spec{
			Seed: 102, UpdatePanicEvery: 17, ComputePanicEvery: 23,
		}},
		{"mixed", fault.Spec{
			Seed: 103, LatencyEvery: 3, Latency: time.Millisecond,
			StallEvery: 5, Stall: time.Millisecond,
			UpdatePanicEvery: 29, ComputePanicEvery: 31,
		}},
	}
}

// TestSoak is the short soak tier: 8 concurrent clients (2 of them
// slow, plus a broken one) × adversarial mixed streams × each fault
// schedule, under the race detector in CI. Every run must converge to
// the sequential oracle's state; across the three schedules the
// backpressure machinery itself must demonstrably engage (≥1 rejected
// batch, ≥1 shed transition) — a soak that never pushed back tested
// nothing.
func TestSoak(t *testing.T) {
	// The plain test tier runs a quick 40-batch soak; the dedicated
	// stress-smoke gate (scripts/check.sh, CI) sets STRESS_SOAK_FULL
	// for the full 200-batch acceptance run.
	clients, batches := 8, 40
	if os.Getenv("STRESS_SOAK_FULL") != "" && !testing.Short() {
		batches = 200
	}
	total429, totalShed, totalPanics := 0, 0, 0
	for _, s := range soakSchedules() {
		t.Run(s.name, func(t *testing.T) {
			rep, err := Run(Config{
				Clients:           clients,
				Batches:           batches,
				BatchSize:         40,
				VerticesPerClient: 256,
				Seed:              42,
				Kind:              gen.AdvMixed,
				Fault:             s.spec,
				Analytics:         streamgraph.AnalyticsPageRank,
				Shed:              streamgraph.ShedConfig{SkipComputeAt: 0.2, ForceBaselineAt: 0.6},
				QueueDepth:        4,
				QueueTimeout:      2 * time.Second,
				SlowClients:       2,
				BrokenClients:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep)
			if rep.Accepted != clients*batches {
				t.Fatalf("accepted %d batches, want %d", rep.Accepted, clients*batches)
			}
			if rep.BrokenRejected == 0 {
				t.Fatal("broken client sent nothing")
			}
			total429 += rep.Rejected429
			totalShed += rep.ShedTransitions
			totalPanics += rep.PanicBatches
		})
	}
	if total429 < 1 {
		t.Errorf("no batch was ever 429'd across %d soak schedules: admission queue never engaged", len(soakSchedules()))
	}
	if totalShed < 1 {
		t.Errorf("no shed transition across %d soak schedules: pressure never reached the ladder", len(soakSchedules()))
	}
	if totalPanics < 1 {
		t.Errorf("no recovered panic across %d soak schedules: panic schedules never fired", len(soakSchedules()))
	}
}

// TestSoakCleanNoFaults: the harness itself must not need faults to
// pass — a fault-free concurrent run also converges, with zero panic
// recoveries.
func TestSoakCleanNoFaults(t *testing.T) {
	rep, err := Run(Config{
		Clients:   4,
		Batches:   30,
		BatchSize: 25,
		Seed:      7,
		Kind:      gen.AdvDeleteHeavy,
		Analytics: streamgraph.AnalyticsCC,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.PanicBatches != 0 {
		t.Fatalf("panicBatches = %d without a fault schedule", rep.PanicBatches)
	}
}

// TestSoakDuration exercises lap mode briefly: clients regenerate
// fresh streams until the deadline, and the oracle replay still holds
// across lap boundaries.
func TestSoakDuration(t *testing.T) {
	if testing.Short() {
		t.Skip("lap mode covered by the full run")
	}
	rep, err := Run(Config{
		Clients:   3,
		Batches:   10,
		BatchSize: 20,
		Seed:      9,
		Kind:      gen.AdvOverlap,
		Duration:  300 * time.Millisecond,
		Fault: fault.Spec{
			Seed: 104, LatencyEvery: 4, Latency: time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Accepted < 3*10 {
		t.Fatalf("accepted %d batches, want at least one full lap (30)", rep.Accepted)
	}
}
