// Package stress is the concurrency soak harness: N concurrent
// clients stream adversarial batches (internal/gen) into a hardened
// HTTP server (internal/server) while a deterministic fault schedule
// (internal/fault) injects store-latency spikes, engine panics, and
// compute stalls underneath. Clients honor the server's backpressure
// contract — 429/503 mean "not counted, retry" — and the run ends by
// downloading a snapshot and replaying every accepted batch through
// the sequential oracle model: whatever faults, shedding, rejections,
// and retries happened along the way, the final graph must be exactly
// what a clean sequential ingest of the accepted batches produces.
//
// The short configuration runs as TestSoak in the tier-1 suite (and
// as the stress-smoke CI job); cmd/sgbench -soak drives the same
// harness for minutes at a time.
package stress

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"streamgraph"
	"streamgraph/internal/fault"
	"streamgraph/internal/gen"
	"streamgraph/internal/graph"
	"streamgraph/internal/oracle"
	"streamgraph/internal/server"
	"streamgraph/internal/trace"
)

// Config sizes one soak run. The zero value of every field selects a
// default, so Config{} is a small but complete run.
type Config struct {
	// Clients is the number of concurrent well-behaved writers
	// (default 4). Each owns a disjoint vertex range, so the final
	// graph is independent of how their batches interleave.
	Clients int
	// Batches is how many batches each client sends per lap (default
	// 50); BatchSize is edges per batch (default 40).
	Batches   int
	BatchSize int
	// VerticesPerClient is each client's private vertex-range width
	// (default 256).
	VerticesPerClient int
	// Seed derives every client's stream and the fault jitter; same
	// seed, same run (up to goroutine interleaving, which the final
	// verification is immune to by construction).
	Seed int64
	// Kind selects the adversarial stream family (default AdvMixed).
	Kind gen.AdvKind
	// Fault is the schedule injected into the pipeline. Panic cadences
	// must be 0 or > 1 so retries can pass (see fault.Injector).
	Fault fault.Spec
	// Analytics runs under the ingest (default AnalyticsNone).
	Analytics streamgraph.Analytics
	// Shed configures the load-shed ladder thresholds.
	Shed streamgraph.ShedConfig
	// QueueDepth / QueueTimeout bound the server's admission queue
	// (defaults: server's own).
	QueueDepth   int
	QueueTimeout time.Duration
	// SlowClients marks that many of the clients as slow: they sleep
	// a few milliseconds between batches, holding admission slots
	// longer and dragging out the tail of the run.
	SlowClients int
	// BrokenClients adds that many extra clients that send only
	// malformed bodies. Every such request must bounce with 400 and
	// leave no trace in the graph.
	BrokenClients int
	// Duration, when positive, makes each client lap its stream (with
	// a fresh seed per lap) until the deadline; otherwise every client
	// sends exactly Batches batches once.
	Duration time.Duration
	// MaxAttempts bounds per-batch retries (default 1000); a batch
	// that never gets 200 fails the run.
	MaxAttempts int
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Batches == 0 {
		c.Batches = 50
	}
	if c.BatchSize == 0 {
		c.BatchSize = 40
	}
	if c.VerticesPerClient == 0 {
		c.VerticesPerClient = 256
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 1000
	}
	return c
}

// Report summarizes one soak run. Accepted counts batches that got
// 200 (each exactly once, however many attempts it took); the
// backpressure counters say how hard the server pushed back.
type Report struct {
	Clients        int
	Accepted       int
	EdgesSent      int
	Rejected429    int
	Retried503     int
	BrokenRejected int
	Elapsed        time.Duration

	// Server-side counters read from /metrics.json after the run.
	ServerBatches   int
	PanicBatches    int
	QueueTimeouts   int
	ShedTransitions int
	FinalEdges      int
}

func (r *Report) String() string {
	return fmt.Sprintf(
		"soak: %d clients, %d batches accepted (%d edges) in %s; 429s=%d retried-503s=%d broken-rejected=%d panics=%d queue-timeouts=%d shed-transitions=%d final-edges=%d",
		r.Clients, r.Accepted, r.EdgesSent, r.Elapsed.Round(time.Millisecond),
		r.Rejected429, r.Retried503, r.BrokenRejected,
		r.PanicBatches, r.QueueTimeouts, r.ShedTransitions, r.FinalEdges)
}

// clientStream generates one client's batches for one lap, with every
// vertex ID offset into the client's private range.
func clientStream(cfg Config, client, lap int) []*graph.Batch {
	spec := gen.AdvSpec{
		Kind:      cfg.Kind,
		Seed:      cfg.Seed + int64(client)*1009 + int64(lap)*31,
		Vertices:  cfg.VerticesPerClient,
		BatchSize: cfg.BatchSize,
		Batches:   cfg.Batches,
	}
	base := graph.VertexID(client * cfg.VerticesPerClient)
	batches := spec.Generate()
	for _, b := range batches {
		for i := range b.Edges {
			b.Edges[i].Src += base
			b.Edges[i].Dst += base
		}
	}
	return batches
}

// counters are shared across client goroutines.
type counters struct {
	accepted  atomic.Int64
	edgesSent atomic.Int64
	rejected  atomic.Int64
	retried   atomic.Int64
	broken    atomic.Int64
}

// postBatch sends one batch until it is accepted, honoring the
// backpressure contract: 429 and 503 both mean the batch was not
// counted as ingested and a retry is safe (re-application of an
// already-applied update set is idempotent).
func postBatch(hc *http.Client, url string, b *graph.Batch, cfg Config, cnt *counters) error {
	body, err := json.Marshal(edgesJSON(b))
	if err != nil {
		return err
	}
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		resp, err := hc.Post(url+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			cnt.accepted.Add(1)
			cnt.edgesSent.Add(int64(len(b.Edges)))
			return nil
		case http.StatusTooManyRequests:
			cnt.rejected.Add(1)
		case http.StatusServiceUnavailable:
			cnt.retried.Add(1)
		default:
			return fmt.Errorf("batch %d: unexpected status %d", b.ID, resp.StatusCode)
		}
		time.Sleep(time.Duration(1+attempt%5) * time.Millisecond)
	}
	return fmt.Errorf("batch %d: not accepted after %d attempts", b.ID, cfg.MaxAttempts)
}

func edgesJSON(b *graph.Batch) []server.EdgeJSON {
	out := make([]server.EdgeJSON, len(b.Edges))
	for i, e := range b.Edges {
		out[i] = server.EdgeJSON{
			Src:    uint32(e.Src),
			Dst:    uint32(e.Dst),
			Weight: float32(e.Weight),
			Delete: e.Delete,
		}
	}
	return out
}

// brokenBodies are the malformed payloads broken clients loop over.
var brokenBodies = []string{
	`not json at all`,
	`[{"src":1,"dst":2},`,
	`[]`,
	`[{"src":1,"dst":2}] trailing garbage`,
	`[{"src":999999999,"dst":2}]`,
	`[{"src":1,"dst":2,"weight":1e999}]`,
	`{"src":1,"dst":2}`,
}

// Run executes one soak: spin up a hardened in-process server over a
// faulted system, hammer it, then verify the final graph against a
// sequential replay of exactly the accepted batches. A non-nil error
// means a contract violation (divergence, lost/double-counted batch,
// wrong status code) — not backpressure, which is the point of the
// exercise and is reported in the Report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	var inj *streamgraph.FaultInjector
	if cfg.Fault.Enabled() {
		inj = streamgraph.NewFaultInjector(cfg.Fault)
	}
	obs := streamgraph.NewObserver(-1) // metrics only; soak needs no trace ring
	sys := streamgraph.New(streamgraph.Config{
		Vertices:  cfg.Clients * cfg.VerticesPerClient,
		Workers:   2,
		Analytics: cfg.Analytics,
		Observer:  obs,
		Fault:     inj,
		Shed:      cfg.Shed,
		Recover:   true,
	})
	ts := httptest.NewServer(server.NewWithOptions(sys, server.Options{
		QueueDepth:   cfg.QueueDepth,
		QueueTimeout: cfg.QueueTimeout,
	}))
	defer ts.Close()
	hc := ts.Client()

	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	var (
		cnt  counters
		wg   sync.WaitGroup
		errs = make(chan error, cfg.Clients+cfg.BrokenClients)
		// sentMu guards sent: per-client accepted batches, in send
		// order, for the sequential replay.
		sentMu sync.Mutex
		sent   = make([][]*graph.Batch, cfg.Clients)
	)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			slow := c < cfg.SlowClients
			for lap := 0; ; lap++ {
				for i, b := range clientStream(cfg, c, lap) {
					if err := postBatch(hc, ts.URL, b, cfg, &cnt); err != nil {
						errs <- fmt.Errorf("client %d: %w", c, err)
						return
					}
					sentMu.Lock()
					sent[c] = append(sent[c], b)
					sentMu.Unlock()
					if slow {
						time.Sleep(time.Duration(1+(c+i)%4) * time.Millisecond)
					}
				}
				if deadline.IsZero() || time.Now().After(deadline) {
					return
				}
			}
		}(c)
	}
	for c := 0; c < cfg.BrokenClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			n := cfg.Batches / 2
			if n < len(brokenBodies) {
				n = len(brokenBodies)
			}
			for i := 0; i < n; i++ {
				body := brokenBodies[(c+i)%len(brokenBodies)]
				resp, err := hc.Post(ts.URL+"/batch", "application/json",
					bytes.NewReader([]byte(body)))
				if err != nil {
					errs <- fmt.Errorf("broken client %d: %w", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// Malformed bodies are rejected before admission: 400
				// always, regardless of load.
				if resp.StatusCode != http.StatusBadRequest {
					errs <- fmt.Errorf("broken client %d: body %q got status %d, want 400",
						c, body, resp.StatusCode)
					return
				}
				cnt.broken.Add(1)
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	// Flush deferred compute; a flush-time fault may 503, so retry
	// under the same contract as batches.
	for attempt := 0; ; attempt++ {
		resp, err := hc.Post(ts.URL+"/flush", "application/json", nil)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt >= cfg.MaxAttempts {
			return nil, fmt.Errorf("flush: status %d after %d attempts", resp.StatusCode, attempt+1)
		}
		time.Sleep(time.Millisecond)
	}

	rep := &Report{
		Clients:        cfg.Clients,
		Accepted:       int(cnt.accepted.Load()),
		EdgesSent:      int(cnt.edgesSent.Load()),
		Rejected429:    int(cnt.rejected.Load()),
		Retried503:     int(cnt.retried.Load()),
		BrokenRejected: int(cnt.broken.Load()),
	}
	if err := readServerCounters(hc, ts.URL, rep); err != nil {
		return nil, err
	}
	// Exactly-once accounting: every accepted batch counted once on
	// the server, nothing more (rejected/timed-out/panicked attempts
	// must not have incremented it).
	if rep.ServerBatches != rep.Accepted {
		return nil, fmt.Errorf("server counted %d batches, clients got 200 for %d (lost or double-counted)",
			rep.ServerBatches, rep.Accepted)
	}

	store, err := downloadSnapshot(hc, ts.URL)
	if err != nil {
		return nil, err
	}
	// Sequential replay of exactly the accepted batches. Client
	// vertex ranges are disjoint, so replaying client-by-client gives
	// the same final state as every actual interleaving.
	model := oracle.NewModel()
	for _, batches := range sent {
		for _, b := range batches {
			model.ApplyBatch(b)
		}
	}
	if div := model.Verify(store); div != nil {
		div.Context = fmt.Sprintf("stress.Config{Seed: %d, Kind: %v, Clients: %d, Batches: %d, BatchSize: %d} with %v",
			cfg.Seed, cfg.Kind, cfg.Clients, cfg.Batches, cfg.BatchSize, cfg.Fault)
		return rep, fmt.Errorf("faulted ingest diverged from sequential oracle: %w", div)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// readServerCounters fills the Report's server-side fields from
// /metrics.json.
func readServerCounters(hc *http.Client, url string, rep *Report) error {
	resp, err := hc.Get(url + "/metrics.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var mj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mj); err != nil {
		return fmt.Errorf("metrics.json: %w", err)
	}
	num := func(key string) int {
		v, _ := mj[key].(float64)
		return int(v)
	}
	rep.ServerBatches = num("batches")
	rep.PanicBatches = num("panicBatches")
	rep.QueueTimeouts = num("queueTimeouts")
	rep.FinalEdges = num("edges")
	if rep.Rejected429 < num("rejected") {
		// Broken clients never reach admission, so the server's count
		// can only exceed the well-behaved clients' tally if someone
		// else was rejected — surface the server's view.
		rep.Rejected429 = num("rejected")
	}
	metrics, _ := mj["metrics"].([]any)
	for _, m := range metrics {
		entry, _ := m.(map[string]any)
		if entry["name"] == "streamgraph_shed_transitions_total" {
			v, _ := entry["value"].(float64) // omitempty: absent means 0
			rep.ShedTransitions = int(v)
		}
	}
	return nil
}

// downloadSnapshot fetches and decodes /snapshot.
func downloadSnapshot(hc *http.Client, url string) (*graph.AdjacencyStore, error) {
	resp, err := hc.Get(url + "/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot: status %d", resp.StatusCode)
	}
	store, err := trace.ReadSnapshot(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("snapshot decode: %w", err)
	}
	return store, nil
}
