package trace

import (
	"bytes"
	"testing"

	"streamgraph/internal/graph"
)

// FuzzReadEdgeStream feeds arbitrary bytes to the stream reader: it
// must never panic or loop, only return edges or errors.
func FuzzReadEdgeStream(f *testing.F) {
	var seed bytes.Buffer
	w, _ := NewWriter(&seed)
	w.WriteEdge(graph.Edge{Src: 1, Dst: 2, Weight: 1})
	w.WriteEdge(graph.Edge{Src: 300000, Dst: 4, Weight: 7.5, Delete: true})
	w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte(streamMagic))
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1_000_000; i++ {
			if _, err := r.ReadEdge(); err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate on bounded input")
	})
}

// FuzzReadSnapshot feeds arbitrary bytes to the snapshot reader.
func FuzzReadSnapshot(f *testing.F) {
	var seed bytes.Buffer
	s := graph.NewAdjacencyStore(4)
	s.InsertEdge(graph.Edge{Src: 0, Dst: 1, Weight: 2})
	s.InsertEdge(graph.Edge{Src: 1, Dst: 2, Weight: 3})
	WriteSnapshot(&seed, s)
	f.Add(seed.Bytes())
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed snapshot must be internally
		// consistent: every out-edge mirrored by an in-edge.
		inCount := 0
		for v := 0; v < got.NumVertices(); v++ {
			got.ForEachIn(graph.VertexID(v), func(graph.Neighbor) { inCount++ })
		}
		if inCount != got.NumEdges() {
			t.Fatalf("parsed snapshot inconsistent: %d in-edges vs %d edges", inCount, got.NumEdges())
		}
	})
}
