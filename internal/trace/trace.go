// Package trace provides durable encodings for the streaming graph
// system: a binary edge-stream format (for recording and replaying
// input streams) and a binary snapshot format for the adjacency
// store (for checkpoint/restore).
//
// Both formats are versioned by magic header and use varint encoding
// for IDs and degrees, so sparse high-ID graphs stay compact.
// In-adjacency is not stored: it mirrors the out-adjacency and is
// rebuilt on load.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"streamgraph/internal/graph"
)

// Format magics. The trailing digit versions the format.
const (
	streamMagic   = "SGEDGE1\n"
	snapshotMagic = "SGSNAP1\n"
)

// ErrBadFormat reports a magic/version mismatch.
var ErrBadFormat = errors.New("trace: unrecognized format or version")

// edge flag bits.
const (
	flagDelete   = 1 << 0
	flagWeighted = 1 << 1 // weight field present (absent means 1)
)

// Writer encodes an edge stream.
type Writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   int64
}

// NewWriter starts a stream on w, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) uvarint(x uint64) error {
	n := binary.PutUvarint(w.buf[:], x)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// WriteEdge appends one edge to the stream.
func (w *Writer) WriteEdge(e graph.Edge) error {
	flags := byte(0)
	if e.Delete {
		flags |= flagDelete
	}
	if e.Weight != 1 {
		flags |= flagWeighted
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	if err := w.uvarint(uint64(e.Src)); err != nil {
		return err
	}
	if err := w.uvarint(uint64(e.Dst)); err != nil {
		return err
	}
	if flags&flagWeighted != 0 {
		var wb [4]byte
		binary.LittleEndian.PutUint32(wb[:], math.Float32bits(float32(e.Weight)))
		if _, err := w.w.Write(wb[:]); err != nil {
			return err
		}
	}
	w.n++
	return nil
}

// Count returns the number of edges written.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered output. Call before closing the sink.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes an edge stream written by Writer.
type Reader struct {
	r *bufio.Reader
}

// NewReader opens a stream, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading stream header: %w", err)
	}
	if string(magic) != streamMagic {
		return nil, ErrBadFormat
	}
	return &Reader{r: br}, nil
}

// ReadEdge returns the next edge, or io.EOF at end of stream.
func (r *Reader) ReadEdge() (graph.Edge, error) {
	flags, err := r.r.ReadByte()
	if err != nil {
		return graph.Edge{}, err // io.EOF at a clean boundary
	}
	src, err := binary.ReadUvarint(r.r)
	if err != nil {
		return graph.Edge{}, unexpected(err)
	}
	dst, err := binary.ReadUvarint(r.r)
	if err != nil {
		return graph.Edge{}, unexpected(err)
	}
	e := graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst), Weight: 1, Delete: flags&flagDelete != 0}
	if flags&flagWeighted != 0 {
		var wb [4]byte
		if _, err := io.ReadFull(r.r, wb[:]); err != nil {
			return graph.Edge{}, unexpected(err)
		}
		e.Weight = graph.Weight(math.Float32frombits(binary.LittleEndian.Uint32(wb[:])))
	}
	return e, nil
}

// ReadBatch reads up to size edges into a batch with the given ID.
// It returns io.EOF (with a nil batch) when the stream is exhausted
// before any edge is read.
func (r *Reader) ReadBatch(id, size int) (*graph.Batch, error) {
	b := &graph.Batch{ID: id}
	for len(b.Edges) < size {
		e, err := r.ReadEdge()
		if err == io.EOF {
			if len(b.Edges) == 0 {
				return nil, io.EOF
			}
			return b, nil
		}
		if err != nil {
			return nil, err
		}
		b.Edges = append(b.Edges, e)
	}
	return b, nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteSnapshot serializes the store's out-adjacency (the in-lists
// are mirrors and are rebuilt on load).
func WriteSnapshot(w io.Writer, s *graph.AdjacencyStore) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	n := s.NumVertices()
	if err := put(uint64(n)); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		id := graph.VertexID(v)
		if err := put(uint64(s.OutDegree(id))); err != nil {
			return err
		}
		var werr error
		s.ForEachOut(id, func(nb graph.Neighbor) {
			if werr != nil {
				return
			}
			if werr = put(uint64(nb.ID)); werr != nil {
				return
			}
			var wb [4]byte
			binary.LittleEndian.PutUint32(wb[:], math.Float32bits(float32(nb.Weight)))
			_, werr = bw.Write(wb[:])
		})
		if werr != nil {
			return werr
		}
	}
	return bw.Flush()
}

// ReadSnapshot reconstructs a store from a snapshot, including the
// mirrored in-adjacency.
func ReadSnapshot(r io.Reader) (*graph.AdjacencyStore, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, ErrBadFormat
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, unexpected(err)
	}
	const maxVertices = 1 << 31
	if n > maxVertices {
		return nil, fmt.Errorf("trace: snapshot vertex count %d exceeds limit", n)
	}
	s := graph.NewAdjacencyStore(int(n))
	for v := uint64(0); v < n; v++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, unexpected(err)
		}
		if deg > n {
			return nil, fmt.Errorf("trace: vertex %d degree %d exceeds vertex count", v, deg)
		}
		src := graph.VertexID(v)
		for i := uint64(0); i < deg; i++ {
			dst, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, unexpected(err)
			}
			if dst >= n {
				return nil, fmt.Errorf("trace: vertex %d has neighbor %d out of range", v, dst)
			}
			var wb [4]byte
			if _, err := io.ReadFull(br, wb[:]); err != nil {
				return nil, unexpected(err)
			}
			weight := graph.Weight(math.Float32frombits(binary.LittleEndian.Uint32(wb[:])))
			nb := graph.Neighbor{ID: graph.VertexID(dst), Weight: weight}
			s.AppendOutUnsafe(src, nb)
			s.AppendInUnsafe(nb.ID, graph.Neighbor{ID: src, Weight: weight})
		}
	}
	return s, nil
}
