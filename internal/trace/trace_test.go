package trace

import (
	"bytes"
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"streamgraph/internal/gen"
	"streamgraph/internal/graph"
)

func TestStreamRoundTrip(t *testing.T) {
	p, _ := gen.ProfileByName("fb")
	s := gen.NewStream(p)
	s.SetDeleteFraction(0.2)
	var edges []graph.Edge
	for i := 0; i < 5000; i++ {
		edges = append(edges, s.NextEdge())
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := w.WriteEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5000 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range edges {
		got, err := r.ReadEdge()
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("edge %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.ReadEdge(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestStreamRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, delMask []bool) bool {
		var edges []graph.Edge
		for i, r := range raw {
			e := graph.Edge{
				Src:    graph.VertexID(r % 100000),
				Dst:    graph.VertexID((r >> 8) % 100000),
				Weight: graph.Weight(r%97) + 1,
			}
			if i < len(delMask) && delMask[i] {
				e.Delete = true
			}
			edges = append(edges, e)
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, e := range edges {
			if w.WriteEdge(e) != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range edges {
			got, err := r.ReadEdge()
			if err != nil || got != want {
				return false
			}
		}
		_, err = r.ReadEdge()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBatch(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 25; i++ {
		w.WriteEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Weight: 1})
	}
	w.Flush()
	r, _ := NewReader(&buf)
	b0, err := r.ReadBatch(0, 10)
	if err != nil || b0.Size() != 10 || b0.ID != 0 {
		t.Fatalf("batch 0: %v %v", b0, err)
	}
	b1, _ := r.ReadBatch(1, 10)
	if b1.Size() != 10 {
		t.Fatalf("batch 1 size %d", b1.Size())
	}
	b2, _ := r.ReadBatch(2, 10) // partial tail
	if b2.Size() != 5 {
		t.Fatalf("tail batch size %d", b2.Size())
	}
	if _, err := r.ReadBatch(3, 10); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOPEXXXX")); err != ErrBadFormat {
		t.Fatalf("stream: %v", err)
	}
	if _, err := ReadSnapshot(bytes.NewBufferString("NOPEXXXX")); err != ErrBadFormat {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := NewReader(bytes.NewBufferString("x")); err == nil {
		t.Fatal("short stream header should error")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WriteEdge(graph.Edge{Src: 300, Dst: 4000, Weight: 7})
	w.Flush()
	data := buf.Bytes()
	// Chop mid-edge: every prefix longer than the header but shorter
	// than the full encoding must error, not loop or panic.
	for cut := len(streamMagic) + 1; cut < len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadEdge(); err == nil {
			t.Fatalf("cut %d: expected error", cut)
		}
	}
}

func edgeSet(s *graph.AdjacencyStore) map[[2]graph.VertexID]graph.Weight {
	out := map[[2]graph.VertexID]graph.Weight{}
	for v := 0; v < s.NumVertices(); v++ {
		id := graph.VertexID(v)
		s.ForEachOut(id, func(n graph.Neighbor) {
			out[[2]graph.VertexID{id, n.ID}] = n.Weight
		})
	}
	return out
}

func inSet(s *graph.AdjacencyStore) map[[2]graph.VertexID]graph.Weight {
	out := map[[2]graph.VertexID]graph.Weight{}
	for v := 0; v < s.NumVertices(); v++ {
		id := graph.VertexID(v)
		s.ForEachIn(id, func(n graph.Neighbor) {
			out[[2]graph.VertexID{n.ID, id}] = n.Weight
		})
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := graph.NewAdjacencyStore(200)
	for i := 0; i < 3000; i++ {
		s.InsertEdge(graph.Edge{
			Src:    graph.VertexID(rng.Intn(200)),
			Dst:    graph.VertexID(rng.Intn(200)),
			Weight: graph.Weight(rng.Intn(50)) + 1,
		})
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != s.NumVertices() || got.NumEdges() != s.NumEdges() {
		t.Fatalf("shape: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), s.NumVertices(), s.NumEdges())
	}
	if want, have := edgeSet(s), edgeSet(got); len(want) != len(have) {
		t.Fatalf("edge sets differ in size")
	} else {
		for k, w := range want {
			if have[k] != w {
				t.Fatalf("edge %v: weight %v != %v", k, have[k], w)
			}
		}
	}
	// The mirrored in-adjacency must be rebuilt exactly.
	wantIn := inSet(s)
	haveIn := inSet(got)
	if len(wantIn) != len(haveIn) {
		t.Fatalf("in-edge mirrors differ: %d vs %d", len(haveIn), len(wantIn))
	}
	for k, w := range wantIn {
		if haveIn[k] != w {
			t.Fatalf("in-edge %v mismatch", k)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, graph.NewAdjacencyStore(0)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil || got.NumVertices() != 0 {
		t.Fatalf("empty snapshot: %v %v", got, err)
	}
}

func TestSnapshotRejectsCorruptDegrees(t *testing.T) {
	// Hand-craft a snapshot claiming an absurd degree.
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.Write([]byte{2})                      // 2 vertices
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // vertex 0: enormous degree
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Fatal("corrupt degree accepted")
	}
}

// TestStreamIsDeterministicBytes: encoding the same edges twice gives
// identical bytes (important for reproducible recorded traces).
func TestStreamIsDeterministicBytes(t *testing.T) {
	mk := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		p, _ := gen.ProfileByName("lj")
		s := gen.NewStream(p)
		for i := 0; i < 2000; i++ {
			w.WriteEdge(s.NextEdge())
		}
		w.Flush()
		return buf.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("stream encoding not deterministic")
	}
	// Unweighted edges should cost ≤ ~6 bytes each at lj's ID range.
	if len(a) > 2000*8 {
		t.Fatalf("encoding too large: %d bytes for 2000 edges", len(a))
	}
}

func TestSnapshotOrderIndependence(t *testing.T) {
	// Two stores with the same edge set inserted in different orders
	// produce snapshots that load into equal edge sets.
	edges := []graph.Edge{
		{Src: 1, Dst: 2, Weight: 5}, {Src: 2, Dst: 3, Weight: 1}, {Src: 1, Dst: 3, Weight: 2},
	}
	s1 := graph.NewAdjacencyStore(4)
	s2 := graph.NewAdjacencyStore(4)
	for _, e := range edges {
		s1.InsertEdge(e)
	}
	perm := []int{2, 0, 1}
	for _, i := range perm {
		s2.InsertEdge(edges[i])
	}
	var b1, b2 bytes.Buffer
	WriteSnapshot(&b1, s1)
	WriteSnapshot(&b2, s2)
	g1, _ := ReadSnapshot(&b1)
	g2, _ := ReadSnapshot(&b2)
	e1 := edgeSet(g1)
	e2 := edgeSet(g2)
	keys := func(m map[[2]graph.VertexID]graph.Weight) [][2]graph.VertexID {
		var ks [][2]graph.VertexID
		for k := range m {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool {
			return ks[i][0] < ks[j][0] || (ks[i][0] == ks[j][0] && ks[i][1] < ks[j][1])
		})
		return ks
	}
	k1, k2 := keys(e1), keys(e2)
	if len(k1) != len(k2) {
		t.Fatal("edge sets differ")
	}
	for i := range k1 {
		if k1[i] != k2[i] || e1[k1[i]] != e2[k2[i]] {
			t.Fatal("edge sets differ")
		}
	}
}
