package update

// BatchArena is the per-engine scratch for the epoch engine's
// reordering: reusable buffers for the two sorted edge views, the
// counting-sort offsets, and the vertex runs. Reordering here is a
// stable counting sort (O(E + V) per view) instead of the comparison
// sort internal/reorder pays: vertex IDs are dense, the offsets array
// is reusable, and — the property the lock-free path is gated on —
// steady-state reordering allocates nothing per edge. Buffers grow
// geometrically on demand and are retained across batches; the arena
// belongs to one engine and is serialized by the store's writer lock.

import (
	"streamgraph/internal/graph"
	"streamgraph/internal/reorder"
)

// BatchArena holds the reusable reorder scratch. The zero value is
// ready to use.
type BatchArena struct {
	bySrc, byDst []graph.Edge
	counts       []int32
	runsSrc      []reorder.Run
	runsDst      []reorder.Run
	runLens      []int
}

// edgeBuf returns buf grown to at least n edges, preserving nothing.
func edgeBuf(buf []graph.Edge, n int) []graph.Edge {
	if cap(buf) < n {
		buf = make([]graph.Edge, n)
	}
	return buf[:n]
}

// sortByKey stable-counting-sorts edges into dst by the given
// endpoint. counts must be all-zero on entry and is returned all-zero.
func (a *BatchArena) sortByKey(dst, edges []graph.Edge, bySrc bool) {
	counts := a.counts
	if bySrc {
		for i := range edges {
			counts[edges[i].Src]++
		}
	} else {
		for i := range edges {
			counts[edges[i].Dst]++
		}
	}
	var off int32
	for v := range counts {
		c := counts[v]
		counts[v] = off
		off += c
	}
	if bySrc {
		for i := range edges {
			v := edges[i].Src
			dst[counts[v]] = edges[i]
			counts[v]++
		}
	} else {
		for i := range edges {
			v := edges[i].Dst
			dst[counts[v]] = edges[i]
			counts[v]++
		}
	}
	// The prefix-sum pass wrote a start offset into every slot, not
	// just touched ones, so the reset must cover the whole vertex
	// space; it is an O(V) memclr and the prefix sum already paid O(V).
	clear(counts)
}

// runsOf appends the maximal same-key runs of the sorted view to out.
func runsOf(out []reorder.Run, edges []graph.Edge, bySrc bool) []reorder.Run {
	out = out[:0]
	lo := 0
	for lo < len(edges) {
		v := edges[lo].Src
		if !bySrc {
			v = edges[lo].Dst
		}
		hi := lo + 1
		if bySrc {
			for hi < len(edges) && edges[hi].Src == v {
				hi++
			}
		} else {
			for hi < len(edges) && edges[hi].Dst == v {
				hi++
			}
		}
		out = append(out, reorder.Run{V: v, Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// Reorder builds both sorted views and their runs for a batch over a
// vertex space of numVerts, reusing the arena's buffers.
func (a *BatchArena) Reorder(edges []graph.Edge, numVerts int) {
	if cap(a.counts) < numVerts {
		a.counts = make([]int32, numVerts)
	}
	a.counts = a.counts[:numVerts]
	a.bySrc = edgeBuf(a.bySrc, len(edges))
	a.byDst = edgeBuf(a.byDst, len(edges))
	a.sortByKey(a.bySrc, edges, true)
	a.sortByKey(a.byDst, edges, false)
	a.runsSrc = runsOf(a.runsSrc, a.bySrc, true)
	a.runsDst = runsOf(a.runsDst, a.byDst, false)
}

// DstRunLens fills and returns the arena's run-length buffer for the
// destination view — ABR's reordered-path instrumentation input. The
// returned slice aliases the arena and is valid until the next batch.
func (a *BatchArena) DstRunLens() []int {
	if cap(a.runLens) < len(a.runsDst) {
		a.runLens = make([]int, len(a.runsDst))
	}
	a.runLens = a.runLens[:len(a.runsDst)]
	for i, r := range a.runsDst {
		a.runLens[i] = r.Len()
	}
	return a.runLens
}
