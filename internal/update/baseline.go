package update

import (
	"time"

	"streamgraph/internal/graph"
)

// Baseline is the edge-parallel locked update engine: incoming graph
// changes arrive as edges and the engine treats the edge as the
// granularity of parallelism. Each edge update locks the source vertex
// to search-and-insert into its out-list, then the destination vertex
// for its in-list. This matches the input batch format perfectly (no
// pre-update transformation) at the cost of lock operations — serious
// ones when the batch is high-degree (Section 4.1).
type Baseline struct {
	Cfg Config
}

// Name implements Engine.
func (e *Baseline) Name() string { return "baseline" }

// Apply implements Engine.
func (e *Baseline) Apply(s *graph.AdjacencyStore, b *graph.Batch) Stats {
	start := time.Now()
	var st Stats
	bid := int32(b.ID)
	s.EnsureVertices(int(b.MaxVertex()) + 1)
	inserts, deletes := b.Split()
	workers := e.Cfg.workers()

	parallelChunks(len(inserts), workers, &st, func(lo, hi int, w *workerStats) {
		for _, edge := range inserts[lo:hi] {
			insertLocked(s, edge, w)
			w.touch(s, edge.Src, bid)
			w.touch(s, edge.Dst, bid)
			w.edges++
		}
	})
	parallelChunks(len(deletes), workers, &st, func(lo, hi int, w *workerStats) {
		for _, edge := range deletes[lo:hi] {
			deleteLocked(s, edge, w)
			w.touch(s, edge.Src, bid)
			w.touch(s, edge.Dst, bid)
			w.edges++
		}
	})

	st.Update = time.Since(start)
	st.Total = st.Update
	e.Cfg.observe(e.Name(), &st)
	return st
}

// insertLocked applies one insertion with the per-vertex locking
// discipline, counting locks and search comparisons.
func insertLocked(s *graph.AdjacencyStore, e graph.Edge, w *workerStats) {
	s.Lock(e.Src)
	w.locks++
	out := s.OutUnsafe(e.Src)
	found := false
	for i := range out {
		w.comparisons++
		if out[i].ID == e.Dst {
			out[i].Weight = e.Weight
			found = true
			break
		}
	}
	if !found {
		s.AppendOutUnsafe(e.Src, graph.Neighbor{ID: e.Dst, Weight: e.Weight})
	}
	s.Unlock(e.Src)

	s.Lock(e.Dst)
	w.locks++
	in := s.InUnsafe(e.Dst)
	found = false
	for i := range in {
		w.comparisons++
		if in[i].ID == e.Src {
			in[i].Weight = e.Weight
			found = true
			break
		}
	}
	if !found {
		s.AppendInUnsafe(e.Dst, graph.Neighbor{ID: e.Src, Weight: e.Weight})
	}
	s.Unlock(e.Dst)
}

// deleteLocked applies one deletion with the locking discipline.
func deleteLocked(s *graph.AdjacencyStore, e graph.Edge, w *workerStats) {
	s.Lock(e.Src)
	w.locks++
	out := s.OutUnsafe(e.Src)
	removed := false
	for i := range out {
		w.comparisons++
		if out[i].ID == e.Dst {
			out[i] = out[len(out)-1]
			s.SetOutUnsafe(e.Src, out[:len(out)-1])
			removed = true
			break
		}
	}
	s.Unlock(e.Src)
	if !removed {
		return
	}

	s.Lock(e.Dst)
	w.locks++
	in := s.InUnsafe(e.Dst)
	for i := range in {
		w.comparisons++
		if in[i].ID == e.Src {
			in[i] = in[len(in)-1]
			s.SetInUnsafe(e.Dst, in[:len(in)-1])
			break
		}
	}
	s.Unlock(e.Dst)
}
