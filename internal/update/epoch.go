package update

// EpochEngine is the lock-free hot path's update engine: reorder the
// batch with the arena's counting sort, apply each vertex run by
// building the vertex's next version in arena memory (graph.EpochStore
// owns the version protocol), and publish the whole batch with one
// epoch advance. No per-vertex locks anywhere — run partitioning gives
// writers exclusivity and epoch pinning gives readers consistency — so
// Stats.Locks is always zero, and a warmed engine allocates nothing
// per edge (the allocation-regression tests pin this down; sglint's
// hotpathalloc polices it statically).

import (
	"sync"
	"sync/atomic"
	"time"

	"streamgraph/internal/graph"
	"streamgraph/internal/reorder"
)

// EpochEngine applies batches to an EpochStore. One engine owns its
// reorder arena; uses of one engine are serialized by the store's
// writer lock (BeginBatch/FinishBatch bracket every Apply).
type EpochEngine struct {
	Cfg   Config
	arena BatchArena
}

// Name identifies the engine in reports and traces.
func (e *EpochEngine) Name() string { return "epoch" }

// epochWorker carries one worker's counters plus the net edge delta
// (out pass only), merged after the join.
type epochWorker struct {
	ws      workerStats
	created int64
	removed int64
}

// Apply ingests b and returns update statistics in the same units as
// the locked engines. The returned epoch (also FinishBatch's value) is
// the batch's position in the store's serialization order.
func (e *EpochEngine) Apply(s *graph.EpochStore, b *graph.Batch) (Stats, uint64) {
	start := time.Now()
	var st Stats
	bid := int32(b.ID)
	workers := e.Cfg.workers()

	s.BeginBatch(workers, int(b.MaxVertex())+1)
	e.arena.Reorder(b.Edges, s.NumVertices())
	st.Sort = time.Since(start)

	updStart := time.Now()
	var delta int64
	delta += e.applyRuns(s, e.arena.runsSrc, e.arena.bySrc, true, bid, workers, &st)
	if e.Cfg.CollectDstRuns {
		st.DstRunLens = e.arena.DstRunLens()
	}
	e.applyRuns(s, e.arena.runsDst, e.arena.byDst, false, bid, workers, &st)
	st.Update = time.Since(updStart)

	epoch := s.FinishBatch(int(delta))
	st.Total = time.Since(start)
	// Each edge was visited by both passes; report it once.
	st.EdgesApplied /= 2
	e.Cfg.observe(e.Name(), &st)
	return st, epoch
}

// applyRuns executes one pass, inline for a single worker (the
// zero-allocation path) and over a joined worker pool otherwise.
// Returns the pass's net created-minus-removed count; only the out
// pass's value contributes to the store's edge total.
func (e *EpochEngine) applyRuns(s *graph.EpochStore, runs []reorder.Run, view []graph.Edge, out bool, bid int32, workers int, st *Stats) int64 {
	if len(runs) == 0 {
		return 0
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	if workers == 1 {
		var w epochWorker
		for i := range runs {
			epochRun(s, 0, runs[i], view, out, bid, &w)
		}
		st.add(&w.ws)
		return w.created - w.removed
	}
	return e.applyRunsParallel(s, runs, view, out, bid, workers, st)
}

// applyRunsParallel fans the pass out across run-partitioned workers,
// each owning its arena index.
//
//sglint:pool epoch update workers join on wg.Wait before the batch publishes; a panic mid-batch must crash rather than publish a half-applied epoch
func (e *EpochEngine) applyRunsParallel(s *graph.EpochStore, runs []reorder.Run, view []graph.Edge, out bool, bid int32, workers int, st *Stats) int64 {
	var next atomic.Int64
	locals := make([]epochWorker, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int, w *epochWorker) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				epochRun(s, k, runs[i], view, out, bid, w)
			}
		}(k, &locals[k])
	}
	wg.Wait()
	var delta int64
	for i := range locals {
		st.add(&locals[i].ws)
		delta += locals[i].created - locals[i].removed
	}
	return delta
}

// epochRun applies one vertex run and folds its counters into w.
func epochRun(s *graph.EpochStore, worker int, run reorder.Run, view []graph.Edge, out bool, bid int32, w *epochWorker) {
	edges := view[run.Lo:run.Hi]
	rs := s.ApplyRun(worker, run.V, out, edges)
	w.ws.comparisons += rs.Comparisons
	w.created += int64(rs.Created)
	w.removed += int64(rs.Removed)
	for i := range edges {
		w.touchEpoch(s, edges[i].Src, bid)
		w.touchEpoch(s, edges[i].Dst, bid)
		w.ws.edges++
	}
}

// touchEpoch is workerStats.touch for the epoch store: maintain
// latest_bid and count unique/overlap vertices exactly once per batch.
func (w *epochWorker) touchEpoch(s *graph.EpochStore, v graph.VertexID, bid int32) {
	unique, overlap := s.TouchBID(v, bid)
	if unique {
		w.ws.unique++
	}
	if overlap {
		w.ws.overlap++
	}
}
