package update_test

// Allocation-regression gates for the lock-free ingest path. The
// tentpole claim is zero allocations per edge end-to-end once the
// engine is warm: the arena's counting sort reuses its buffers, the
// store's chunk pool recycles version memory batch-over-batch (with no
// pinned readers a batch's retired chunks are reclaimable by its own
// FinishBatch), and nothing on the per-edge path boxes, closes over,
// or appends. These tests pin that down dynamically; sglint's
// hotpathalloc analyzer polices the same property statically.

import (
	"runtime"
	"testing"

	"streamgraph/internal/gen"
	"streamgraph/internal/graph"
	"streamgraph/internal/update"
)

// warmEpoch returns a store and engine in steady state: the stream
// has been applied once, so the vertex table, arena buffers and chunk
// pool have all reached their working sizes.
func warmEpoch(workers int) (*graph.EpochStore, *update.EpochEngine, []*graph.Batch) {
	spec := gen.AdvSpec{Kind: gen.AdvMixed, Seed: 7, Vertices: 1024, BatchSize: 2048, Batches: 6}
	batches := spec.Generate()
	st := graph.NewEpochStore(1024, graph.EpochOptions{})
	eng := &update.EpochEngine{Cfg: update.Config{Workers: workers}}
	for _, b := range batches {
		eng.Apply(st, b)
	}
	return st, eng, batches
}

// TestEpochIngestZeroAlloc is the hard gate: the single-worker (inline)
// ingest path must allocate nothing at all per batch once warm — not
// zero per edge, zero, full stop.
func TestEpochIngestZeroAlloc(t *testing.T) {
	st, eng, batches := warmEpoch(1)
	b := batches[len(batches)-1]
	runtime.GC()
	allocs := testing.AllocsPerRun(10, func() {
		eng.Apply(st, b)
	})
	if allocs != 0 {
		t.Fatalf("single-worker epoch ingest: %v allocs per batch (%d edges), want 0", allocs, b.Size())
	}
}

// TestEpochIngestParallelAllocBound bounds the multi-worker path: the
// per-batch fan-out (worker locals, goroutine starts) is O(workers)
// and amortizes to well under a hundredth of an allocation per edge;
// the per-edge work itself still allocates nothing.
func TestEpochIngestParallelAllocBound(t *testing.T) {
	st, eng, batches := warmEpoch(4)
	b := batches[len(batches)-1]
	runtime.GC()
	allocs := testing.AllocsPerRun(10, func() {
		eng.Apply(st, b)
	})
	perEdge := allocs / float64(b.Size())
	if perEdge >= 0.05 {
		t.Fatalf("parallel epoch ingest: %v allocs/batch = %v allocs/edge (%d edges), want < 0.05",
			allocs, perEdge, b.Size())
	}
}
