package update

import "streamgraph/internal/graph"

// ApplyMutable ingests one batch through the coarse-grained Mutable
// interface, applying the exact batch semantics the optimized engines
// implement: all insertions first in batch order (re-inserting an
// existing edge updates its weight, so the last insertion of a key in
// the batch wins), then all deletions in batch order (deleting an
// absent edge is a no-op). It is the sequential reference path for
// stores the batch engines do not target (DAH, hybrid) and the anchor
// the differential oracle replays every engine against.
//
// Returns the number of edges created and removed.
func ApplyMutable(m graph.Mutable, b *graph.Batch) (created, removed int) {
	inserts, deletes := b.Split()
	for _, e := range inserts {
		if m.InsertEdge(e) {
			created++
		}
	}
	for _, e := range deletes {
		if m.DeleteEdge(e.Src, e.Dst) {
			removed++
		}
	}
	return created, removed
}
