package update

import (
	"time"

	"streamgraph/internal/graph"
	"streamgraph/internal/reorder"
)

// Reordered is the RO update engine: it pays for two parallel stable
// sorts of the batch (by source and by destination) and in exchange
// applies all updates lock-free, one vertex run per thread. With USC
// enabled it additionally coalesces each run's duplicate-check
// searches into a single scan of the vertex's edge data (Section 4.3).
type Reordered struct {
	Cfg Config
	USC bool
}

// Name implements Engine.
func (e *Reordered) Name() string {
	if e.USC {
		return "ro+usc"
	}
	return "ro"
}

// Apply implements Engine.
func (e *Reordered) Apply(s *graph.AdjacencyStore, b *graph.Batch) Stats {
	start := time.Now()
	var st Stats
	bid := int32(b.ID)
	s.EnsureVertices(int(b.MaxVertex()) + 1)
	workers := e.Cfg.workers()

	r := reorder.Reorder(b, workers)
	st.Sort = time.Since(start)

	updStart := time.Now()
	// Pass 1: out-edges, clustered by source.
	parallelRuns(r.RunsBySrc(), workers, &st, func(run reorder.Run, w *workerStats) {
		e.applyRun(s, r.BySrc[run.Lo:run.Hi], run.V, true, bid, w)
	})
	// Pass 2: in-edges, clustered by destination.
	dstRuns := r.RunsByDst()
	if e.Cfg.CollectDstRuns {
		st.DstRunLens = make([]int, len(dstRuns))
		for i, run := range dstRuns {
			st.DstRunLens[i] = run.Len()
		}
	}
	parallelRuns(dstRuns, workers, &st, func(run reorder.Run, w *workerStats) {
		e.applyRun(s, r.ByDst[run.Lo:run.Hi], run.V, false, bid, w)
	})
	st.Update = time.Since(updStart)
	st.Total = time.Since(start)
	// Each edge was visited by both passes; report it once.
	st.EdgesApplied /= 2
	e.Cfg.observe(e.Name(), &st)
	return st
}

// applyRun ingests one vertex run. v is the run's owner; out selects
// the adjacency direction (true: v's out-list keyed by Dst, false:
// v's in-list keyed by Src). The caller guarantees this goroutine is
// the only one touching v's adjacency in this pass.
func (e *Reordered) applyRun(s *graph.AdjacencyStore, edges []graph.Edge, v graph.VertexID, out bool, bid int32, w *workerStats) {
	if e.USC && len(edges) >= e.Cfg.minCoalesce() {
		e.applyRunCoalesced(s, edges, v, out, bid, w)
		return
	}
	// Plain RO: per-edge linear search, but no locks. Insertions
	// first, then deletions (the global update-ordering policy).
	for _, edge := range edges {
		if edge.Delete {
			continue
		}
		key := runKey(edge, out)
		list := adjOf(s, v, out)
		found := false
		for i := range list {
			w.comparisons++
			if list[i].ID == key {
				list[i].Weight = edge.Weight
				found = true
				break
			}
		}
		if !found {
			appendAdj(s, v, out, graph.Neighbor{ID: key, Weight: edge.Weight})
		}
		w.touch(s, edge.Src, bid)
		w.touch(s, edge.Dst, bid)
		w.edges++
	}
	for _, edge := range edges {
		if !edge.Delete {
			continue
		}
		key := runKey(edge, out)
		list := adjOf(s, v, out)
		for i := range list {
			w.comparisons++
			if list[i].ID == key {
				list[i] = list[len(list)-1]
				setAdj(s, v, out, list[:len(list)-1])
				break
			}
		}
		w.touch(s, edge.Src, bid)
		w.touch(s, edge.Dst, bid)
		w.edges++
	}
}

// applyRunCoalesced is USC: populate a hash table with the run's
// targets, scan v's edge data once, update matches in place, and
// append the remainder.
func (e *Reordered) applyRunCoalesced(s *graph.AdjacencyStore, edges []graph.Edge, v graph.VertexID, out bool, bid int32, w *workerStats) {
	ins := make(map[graph.VertexID]graph.Weight, len(edges))
	var del map[graph.VertexID]struct{}
	for _, edge := range edges {
		key := runKey(edge, out)
		if edge.Delete {
			if del == nil {
				//sglint:ignore hotpathalloc lazy one-time allocation: runs at most once per run and only when the batch deletes; hoisting would charge every insert-only run
				del = make(map[graph.VertexID]struct{})
			}
			del[key] = struct{}{}
		} else {
			ins[key] = edge.Weight // last writer in batch order wins
		}
		w.hashOps++
		w.touch(s, edge.Src, bid)
		w.touch(s, edge.Dst, bid)
		w.edges++
	}
	// The update-ordering policy applies every insertion before any
	// deletion, so a key that is both inserted and deleted in this
	// batch ends up deleted.
	for key := range del {
		delete(ins, key)
	}

	// Single scan: update duplicates, drop deletions, keep the rest.
	list := adjOf(s, v, out)
	kept := 0
	for i := range list {
		w.comparisons++
		if _, drop := del[list[i].ID]; drop {
			w.hashOps++
			continue
		}
		if weight, ok := ins[list[i].ID]; ok {
			w.hashOps++
			list[i].Weight = weight
			delete(ins, list[i].ID)
		}
		list[kept] = list[i]
		kept++
	}
	list = list[:kept]
	// Non-matching targets are fresh edges: insert at the end.
	for key, weight := range ins {
		w.hashOps++
		list = append(list, graph.Neighbor{ID: key, Weight: weight})
	}
	setAdj(s, v, out, list)
}

// runKey returns the neighbor ID an edge contributes to v's adjacency
// in the given direction.
func runKey(e graph.Edge, out bool) graph.VertexID {
	if out {
		return e.Dst
	}
	return e.Src
}

func adjOf(s *graph.AdjacencyStore, v graph.VertexID, out bool) []graph.Neighbor {
	if out {
		return s.OutUnsafe(v)
	}
	return s.InUnsafe(v)
}

func setAdj(s *graph.AdjacencyStore, v graph.VertexID, out bool, ns []graph.Neighbor) {
	if out {
		s.SetOutUnsafe(v, ns)
		return
	}
	s.SetInUnsafe(v, ns)
}

func appendAdj(s *graph.AdjacencyStore, v graph.VertexID, out bool, n graph.Neighbor) {
	if out {
		s.AppendOutUnsafe(v, n)
		return
	}
	s.AppendInUnsafe(v, n)
}
