// Package update implements the graph update engines the paper
// evaluates:
//
//   - Baseline: edge-parallel ingestion with per-vertex locks and a
//     linear duplicate-check search per edge (Section 3.2's baseline).
//   - Reordered (RO): lock-free vertex-centric ingestion over a batch
//     reordered by internal/reorder; pays two parallel stable sorts
//     and two update passes (out-edges by source, in-edges by
//     destination).
//   - Reordered+USC: RO plus update search coalescing — one scan of a
//     vertex's edge data serves all of that vertex's incoming updates
//     through a small hash table (Section 4.3).
//
// All engines implement the same semantics so that any mode can be
// chosen per batch: within a batch, all insertions are applied before
// all deletions (the paper's HAU update-ordering policy, adopted
// globally so every execution mode converges to the same state);
// inserting an existing edge updates its weight; deleting an absent
// edge is a no-op.
package update

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamgraph/internal/graph"
	"streamgraph/internal/obs"
	"streamgraph/internal/reorder"
)

// Stats describes one batch update: where the time went and how much
// synchronization and search work the engine performed. Counters are
// exact, not sampled.
type Stats struct {
	// Locks is the number of per-vertex lock acquisitions.
	Locks int64
	// Comparisons is the number of adjacency entries examined by
	// duplicate-check searches (including USC's single scans).
	Comparisons int64
	// HashOps is the number of USC hash-table operations.
	HashOps int64
	// EdgesApplied is the number of edge operations ingested.
	EdgesApplied int64
	// UniqueVerts and OverlapVerts support OCA: vertices touched for
	// the first time in this batch, and those whose previous
	// latest_bid was exactly the preceding batch.
	UniqueVerts  int64
	OverlapVerts int64
	// Sort is the time spent reordering (zero for the baseline);
	// Update is the ingestion time; Total covers both.
	Sort   time.Duration
	Update time.Duration
	Total  time.Duration
	// DstRunLens holds the destination-run lengths (per-vertex
	// intra-batch in-degrees) when Config.CollectDstRuns is set on a
	// reordered engine; ABR's reordered-path instrumentation reads
	// CAD_λ from these at near-zero cost.
	DstRunLens []int
}

// add accumulates worker-local counters into s.
func (s *Stats) add(w *workerStats) {
	s.Locks += w.locks
	s.Comparisons += w.comparisons
	s.HashOps += w.hashOps
	s.EdgesApplied += w.edges
	s.UniqueVerts += w.unique
	s.OverlapVerts += w.overlap
}

type workerStats struct {
	locks       int64
	comparisons int64
	hashOps     int64
	edges       int64
	unique      int64
	overlap     int64
}

// touch records vertex v's appearance in batch bid, maintaining the
// latest_bid field OCA reads and counting unique/overlap vertices
// exactly once per batch.
func (w *workerStats) touch(s *graph.AdjacencyStore, v graph.VertexID, bid int32) {
	prev := s.LatestBID(v)
	if prev == bid {
		return
	}
	if s.SwapLatestBID(v, bid) == bid {
		return // another worker won the race; it did the counting
	}
	w.unique++
	if prev >= 0 && prev == bid-1 {
		w.overlap++
	}
}

// Config holds engine tuning knobs shared by all engines.
type Config struct {
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
	// MinCoalesceRun is the smallest vertex run USC builds a hash
	// table for; shorter runs use direct scans, where coalescing is
	// superfluous (the paper's degree-1 argument, Section 4.5).
	// 0 means the default of 8.
	MinCoalesceRun int
	// CollectDstRuns makes reordered engines record destination run
	// lengths into Stats.DstRunLens (ABR-active instrumentation).
	CollectDstRuns bool
	// Obs, when non-nil, receives each Apply's latency and work
	// counters (lock acquisitions, duplicate-search comparisons, USC
	// hash operations) — the quantities the paper's optimizations
	// target. Nil disables the instrumentation.
	Obs *obs.Observer
}

// observe reports one completed Apply to the configured observer.
func (c Config) observe(engine string, st *Stats) {
	c.Obs.ObserveEngineApply(engine, st.Total.Seconds(),
		st.EdgesApplied, st.Locks, st.Comparisons, st.HashOps)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) minCoalesce() int {
	if c.MinCoalesceRun > 0 {
		return c.MinCoalesceRun
	}
	return 8
}

// Engine applies input batches to an adjacency store.
type Engine interface {
	// Name identifies the engine in reports ("baseline", "ro", ...).
	Name() string
	// Apply ingests b and returns the update statistics.
	Apply(s *graph.AdjacencyStore, b *graph.Batch) Stats
}

// chunk is the dynamic-scheduling granularity for edge-parallel work.
const chunk = 256

// parallelChunks runs fn over [0,n) in dynamically scheduled chunks
// using the configured worker count, giving each worker a private
// workerStats that is merged into st afterwards.
//
//sglint:pool update worker pools join on wg.Wait before the batch returns; a panic in an apply kernel must crash, not be swallowed mid-batch
func parallelChunks(n, workers int, st *Stats, fn func(lo, hi int, w *workerStats)) {
	if n == 0 {
		return
	}
	if workers > n/chunk+1 {
		workers = n/chunk + 1
	}
	var next atomic.Int64
	locals := make([]workerStats, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(w *workerStats) {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi, w)
			}
		}(&locals[k])
	}
	wg.Wait()
	for i := range locals {
		st.add(&locals[i])
	}
}

// parallelRuns dynamically schedules whole vertex runs across workers
// (the RO work division: one thread owns all of a vertex's edges).
func parallelRuns(runs []reorder.Run, workers int, st *Stats, fn func(r reorder.Run, w *workerStats)) {
	if len(runs) == 0 {
		return
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	var next atomic.Int64
	locals := make([]workerStats, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(w *workerStats) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				fn(runs[i], w)
			}
		}(&locals[k])
	}
	wg.Wait()
	for i := range locals {
		st.add(&locals[i])
	}
}
