package update

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"streamgraph/internal/gen"
	"streamgraph/internal/graph"
)

// randomBatches generates batches where each (src, dst) pair appears
// at most once per batch, so that weight outcomes are deterministic
// under every engine's scheduling (see package doc on semantics).
func randomBatches(seed int64, nBatches, size, vspace int, withDeletes bool) []*graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	var out []*graph.Batch
	type pair struct{ s, d graph.VertexID }
	var emitted []pair
	for bi := 0; bi < nBatches; bi++ {
		seen := make(map[pair]bool)
		b := &graph.Batch{ID: bi}
		for len(b.Edges) < size {
			if withDeletes && len(emitted) > 0 && rng.Intn(4) == 0 {
				p := emitted[rng.Intn(len(emitted))]
				if seen[p] {
					continue
				}
				seen[p] = true
				b.Edges = append(b.Edges, graph.Edge{Src: p.s, Dst: p.d, Delete: true})
				continue
			}
			p := pair{graph.VertexID(rng.Intn(vspace)), graph.VertexID(rng.Intn(vspace))}
			if p.s == p.d || seen[p] {
				continue
			}
			seen[p] = true
			b.Edges = append(b.Edges, graph.Edge{Src: p.s, Dst: p.d, Weight: graph.Weight(rng.Intn(50) + 1)})
			emitted = append(emitted, p)
		}
		out = append(out, b)
	}
	return out
}

// applyRef applies a batch to the oracle with the engines' semantics:
// all insertions, then all deletions.
func applyRef(ref map[[2]graph.VertexID]graph.Weight, b *graph.Batch) {
	ins, dels := b.Split()
	for _, e := range ins {
		ref[[2]graph.VertexID{e.Src, e.Dst}] = e.Weight
	}
	for _, e := range dels {
		delete(ref, [2]graph.VertexID{e.Src, e.Dst})
	}
}

func checkStoreMatchesRef(t *testing.T, s *graph.AdjacencyStore, ref map[[2]graph.VertexID]graph.Weight, engine string) {
	t.Helper()
	if s.NumEdges() != len(ref) {
		t.Fatalf("%s: NumEdges = %d, want %d", engine, s.NumEdges(), len(ref))
	}
	inCount := 0
	for v := 0; v < s.NumVertices(); v++ {
		id := graph.VertexID(v)
		s.ForEachOut(id, func(n graph.Neighbor) {
			w, ok := ref[[2]graph.VertexID{id, n.ID}]
			if !ok {
				t.Fatalf("%s: unexpected edge %d->%d", engine, v, n.ID)
			}
			if w != n.Weight {
				t.Fatalf("%s: edge %d->%d weight %v, want %v", engine, v, n.ID, n.Weight, w)
			}
		})
		s.ForEachIn(id, func(n Neighbor) {
			inCount++
			if _, ok := ref[[2]graph.VertexID{n.ID, id}]; !ok {
				t.Fatalf("%s: unexpected in-edge %d<-%d", engine, v, n.ID)
			}
		})
	}
	if inCount != len(ref) {
		t.Fatalf("%s: in-edge mirror count %d, want %d", engine, inCount, len(ref))
	}
}

// Neighbor aliases graph.Neighbor for brevity in the test above.
type Neighbor = graph.Neighbor

func engines() []Engine {
	cfg := Config{Workers: 4}
	forced := Config{Workers: 4, MinCoalesceRun: 1} // coalesce every run
	return []Engine{
		&Baseline{Cfg: cfg},
		&Reordered{Cfg: cfg},
		&Reordered{Cfg: cfg, USC: true},
		&Reordered{Cfg: forced, USC: true},
	}
}

func TestEnginesMatchOracle(t *testing.T) {
	for _, withDeletes := range []bool{false, true} {
		batches := randomBatches(7, 6, 2000, 300, withDeletes)
		for _, e := range engines() {
			s := graph.NewAdjacencyStore(300)
			ref := make(map[[2]graph.VertexID]graph.Weight)
			for _, b := range batches {
				e.Apply(s, b)
				applyRef(ref, b)
			}
			checkStoreMatchesRef(t, s, ref, e.Name())
		}
	}
}

func TestEnginesMatchOracleForcedUSC(t *testing.T) {
	// MinCoalesceRun=1 forces the hash-table path for every run,
	// including degree-1 runs.
	e := &Reordered{Cfg: Config{Workers: 4, MinCoalesceRun: 1}, USC: true}
	batches := randomBatches(11, 5, 1500, 100, true)
	s := graph.NewAdjacencyStore(100)
	ref := make(map[[2]graph.VertexID]graph.Weight)
	for _, b := range batches {
		e.Apply(s, b)
		applyRef(ref, b)
	}
	checkStoreMatchesRef(t, s, ref, "ro+usc(min=1)")
}

// TestEnginesAgreeProperty: the central invariant — every engine
// produces the identical graph for the same batch sequence.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		batches := randomBatches(seed, 3, 800, 120, true)
		var stores []*graph.AdjacencyStore
		for _, e := range engines() {
			s := graph.NewAdjacencyStore(120)
			for _, b := range batches {
				e.Apply(s, b)
			}
			stores = append(stores, s)
		}
		base := dump(stores[0])
		for _, s := range stores[1:] {
			if dump(s) != base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// dump renders the full edge set deterministically.
func dump(s *graph.AdjacencyStore) string {
	var sb []byte
	for v := 0; v < s.NumVertices(); v++ {
		var ns []graph.Neighbor
		s.ForEachOut(graph.VertexID(v), func(n graph.Neighbor) { ns = append(ns, n) })
		sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
		for _, n := range ns {
			sb = append(sb, byte(v), byte(v>>8), byte(n.ID), byte(n.ID>>8), byte(n.Weight))
		}
	}
	return string(sb)
}

func TestStatsAccounting(t *testing.T) {
	batches := randomBatches(3, 1, 1000, 200, false)
	b := batches[0]

	s1 := graph.NewAdjacencyStore(200)
	base := (&Baseline{Cfg: Config{Workers: 4}}).Apply(s1, b)
	if base.EdgesApplied != 1000 {
		t.Fatalf("baseline EdgesApplied = %d", base.EdgesApplied)
	}
	if base.Locks != 2000 { // one lock per endpoint per edge
		t.Fatalf("baseline Locks = %d", base.Locks)
	}
	if base.Sort != 0 {
		t.Fatal("baseline should not sort")
	}
	if base.UniqueVerts == 0 {
		t.Fatal("baseline should count unique vertices")
	}

	s2 := graph.NewAdjacencyStore(200)
	ro := (&Reordered{Cfg: Config{Workers: 4}}).Apply(s2, b)
	if ro.EdgesApplied != 1000 {
		t.Fatalf("ro EdgesApplied = %d", ro.EdgesApplied)
	}
	if ro.Locks != 0 {
		t.Fatalf("ro Locks = %d, want 0", ro.Locks)
	}
	if ro.Total < ro.Sort || ro.Total < ro.Update {
		t.Fatal("ro Total must cover Sort and Update")
	}

	s3 := graph.NewAdjacencyStore(200)
	usc := (&Reordered{Cfg: Config{Workers: 4, MinCoalesceRun: 1}, USC: true}).Apply(s3, b)
	if usc.HashOps == 0 {
		t.Fatal("usc should count hash operations")
	}
	if usc.Locks != 0 {
		t.Fatalf("usc Locks = %d, want 0", usc.Locks)
	}
}

// TestUSCSavesComparisons: on a high-degree batch, USC performs far
// fewer adjacency comparisons than plain RO — the work-efficiency
// claim behind Fig. 17.
func TestUSCSavesComparisons(t *testing.T) {
	p, err := gen.ProfileByName("wiki")
	if err != nil {
		t.Fatal(err)
	}
	p.WarmupEdges = 0
	st := gen.NewStreamSeed(p, 42)
	// Pre-populate the graph so edge arrays are long, then measure.
	warm := st.NextBatch(50000)
	target := st.NextBatch(50000)

	s1 := graph.NewAdjacencyStore(p.Vertices)
	ro := &Reordered{Cfg: Config{Workers: 4}}
	ro.Apply(s1, warm)
	roStats := ro.Apply(s1, target)

	s2 := graph.NewAdjacencyStore(p.Vertices)
	usc := &Reordered{Cfg: Config{Workers: 4}, USC: true}
	usc.Apply(s2, warm)
	uscStats := usc.Apply(s2, target)

	if uscStats.Comparisons*2 > roStats.Comparisons {
		t.Fatalf("USC comparisons %d not substantially below RO %d",
			uscStats.Comparisons, roStats.Comparisons)
	}
	if dump(s1) != dump(s2) {
		t.Fatal("USC and RO disagree on final graph")
	}
}

// TestOverlapCounting: OCA's counters see the overlap between
// consecutive batches exactly.
func TestOverlapCounting(t *testing.T) {
	s := graph.NewAdjacencyStore(10)
	e := &Baseline{Cfg: Config{Workers: 1}}
	b0 := &graph.Batch{ID: 0, Edges: []graph.Edge{
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1},
	}}
	st0 := e.Apply(s, b0)
	if st0.UniqueVerts != 4 || st0.OverlapVerts != 0 {
		t.Fatalf("batch 0: unique=%d overlap=%d", st0.UniqueVerts, st0.OverlapVerts)
	}
	b1 := &graph.Batch{ID: 1, Edges: []graph.Edge{
		{Src: 1, Dst: 2, Weight: 2}, // both overlap
		{Src: 5, Dst: 6, Weight: 1}, // both new
	}}
	st1 := e.Apply(s, b1)
	if st1.UniqueVerts != 4 || st1.OverlapVerts != 2 {
		t.Fatalf("batch 1: unique=%d overlap=%d", st1.UniqueVerts, st1.OverlapVerts)
	}
}

func TestEngineNames(t *testing.T) {
	if (&Baseline{}).Name() != "baseline" {
		t.Fatal("baseline name")
	}
	if (&Reordered{}).Name() != "ro" {
		t.Fatal("ro name")
	}
	if (&Reordered{USC: true}).Name() != "ro+usc" {
		t.Fatal("usc name")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.workers() < 1 {
		t.Fatal("default workers must be positive")
	}
	if c.minCoalesce() != 8 {
		t.Fatalf("default minCoalesce = %d", c.minCoalesce())
	}
}
