#!/bin/sh
# Pre-PR gate: formatting, vet, staticcheck (when installed), sglint,
# build, and the full test suite with the race detector. Run from the
# repository root:
#
#   ./scripts/check.sh
#
# Every stage runs even after a failure, then a per-stage pass/fail
# summary is printed and the script exits with the FIRST failing
# stage's code, so CI logs attribute the failure to the right gate:
#
#   10 gofmt   11 go vet   12 staticcheck   13 sglint
#   14 go build   15 go test -race   16 stress soak
#   17 bench trajectory   18 baseline preflight   19 bench store
#   20 sglint json   21 lint budget   22 bench lockfree
#   23 epoch torture   24 shard oracle
#
# The baseline preflight (18) validates the committed BENCH_*.json
# gate baselines (existence, JSON, schema version) BEFORE the bench
# stages run; on failure both bench stages are skipped, so a missing
# or stale baseline fails fast with its own code instead of minutes
# into a measurement run.
#
# CI (.github/workflows/ci.yml) runs the same gates as separate jobs
# plus fuzz, bench, and stress smoke.
set -u

cd "$(dirname "$0")/.."

# summary accumulates "name:status:code" lines; exit_code keeps the
# first failure's code.
summary=""
exit_code=0

record() {
    # record <name> <stage-exit> <assigned-code>
    if [ "$2" -eq 0 ]; then
        summary="${summary}${1}:pass:0\n"
    else
        summary="${summary}${1}:FAIL:${3}\n"
        if [ "$exit_code" -eq 0 ]; then
            exit_code=$3
        fi
    fi
}

echo "== gofmt =="
# Capture to a file, not $(...): a gofmt crash (parse error, bad
# permissions) must fail the gate instead of yielding an empty list
# that reads as "all formatted".
fmtout=$(mktemp)
trap 'rm -f "$fmtout"' EXIT
fmt_rc=0
if ! gofmt -l . >"$fmtout" 2>&1; then
    echo "gofmt: failed:" >&2
    cat "$fmtout" >&2
    fmt_rc=1
elif [ -s "$fmtout" ]; then
    echo "gofmt: needs formatting:" >&2
    cat "$fmtout" >&2
    fmt_rc=1
fi
record gofmt "$fmt_rc" 10

echo "== go vet =="
go vet ./...
record "go vet" $? 11

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
    record staticcheck $? 12
else
    echo "== staticcheck == (skipped: not installed; CI runs it pinned)"
    summary="${summary}staticcheck:skip:0\n"
fi

echo "== sglint =="
go run ./cmd/sglint ./...
record sglint $? 13

echo "== sglint json =="
# The machine-readable path CI's problem matcher and editor tooling
# consume: same findings, one JSON object per line. Exercised as its
# own gate so a -json regression cannot hide behind a clean text run.
go run ./cmd/sglint -json ./...
record "sglint json" $? 20

echo "== lint budget =="
# Wall-clock regression gate on the analysis itself: a full sglint
# load-and-analyze pass must stay within the budget (generous for CI
# hardware; the suite takes ~2s on a dev laptop). Profile regressions
# with: go test -bench BenchmarkAnalyzersOnly ./internal/lint
SGLINT_TIME_BUDGET=60s go test -count=1 -run '^TestAnalysisTimeBudget$' ./internal/lint
record "lint budget" $? 21

echo "== go build =="
go build ./...
record "go build" $? 14

echo "== go test -race =="
# -count=1 defeats the test cache: a gate that replays cached results
# verifies nothing about the current build environment.
go test -race -count=1 ./...
record "go test -race" $? 15

echo "== stress soak =="
# The full-length fault-injected concurrency soak (the plain test run
# above only gets the quick 40-batch tier). Race-clean, backpressure
# engaged, final state oracle-verified — see internal/stress.
STRESS_SOAK_FULL=1 go test -race -count=1 -run '^TestSoak$' ./internal/stress
record "stress soak" $? 16

echo "== epoch torture =="
# Full-tier epoch torture: N writers racing M pinned readers on the
# lock-free store, mirror invariant and torn-vertex checks on every
# read, grace-period reclamation required to make progress. The plain
# test run above covers only the quick tier.
STRESS_SOAK_FULL=1 go test -race -count=1 -run '^TestEpochTorture$' ./internal/graph
record "epoch torture" $? 23

echo "== shard oracle =="
# Sharded differential quick tier: every adversarial stream family
# through 2 shards (mirrored cross-shard edges) plus the skew-driven
# mid-stream repartition run, verified edge-for-edge against the
# sequential reference. CI's shard-matrix job runs N=1/2/4.
SHARDS=2 go test -race -count=1 -run '^TestShardMatrixDifferential$' ./internal/oracle
record "shard oracle" $? 24

echo "== baseline preflight =="
go run ./cmd/sgbench -validate-baselines
preflight_rc=$?
record "baseline preflight" "$preflight_rc" 18

if [ "$preflight_rc" -eq 0 ]; then
    echo "== bench trajectory =="
    # Quick adversarial engine×store matrix with span-derived per-phase
    # breakdowns, gated per-phase (ns/edge) against the committed
    # baseline. Refresh the baseline deliberately with
    #   go run ./cmd/sgbench -experiment -quick -experiment-write-baseline \
    #       -experiment-out BENCH_baseline.json
    go run ./cmd/sgbench -experiment -quick -experiment-out BENCH_trajectory.json \
        -experiment-baseline BENCH_baseline.json
    record "bench trajectory" $? 17

    echo "== bench store =="
    # Store head-to-head (every fixed store plus the adaptive store
    # under live migration), gated the same way. Refresh with
    #   go run ./cmd/sgbench -store-experiment -quick \
    #       -store-write-baseline -store-out BENCH_store.json
    go run ./cmd/sgbench -store-experiment -quick -store-out BENCH_storecmp.json \
        -store-baseline BENCH_store.json
    record "bench store" $? 19

    echo "== bench lockfree =="
    # Lock-free head-to-head (epoch engine vs the mutex baseline and
    # ro+usc), gated per-phase against the committed baseline. Refresh
    # with
    #   go run ./cmd/sgbench -lockfree-experiment -quick \
    #       -lockfree-write-baseline -lockfree-out BENCH_lockfree.json
    go run ./cmd/sgbench -lockfree-experiment -quick -lockfree-out BENCH_lockfreecmp.json \
        -lockfree-baseline BENCH_lockfree.json
    record "bench lockfree" $? 22
else
    echo "== bench trajectory == (skipped: baseline preflight failed)"
    summary="${summary}bench trajectory:skip:0\n"
    echo "== bench store == (skipped: baseline preflight failed)"
    summary="${summary}bench store:skip:0\n"
    echo "== bench lockfree == (skipped: baseline preflight failed)"
    summary="${summary}bench lockfree:skip:0\n"
fi

echo
echo "== summary =="
printf "%b" "$summary" | while IFS=: read -r name status code; do
    if [ "$status" = "FAIL" ]; then
        printf "  %-14s %s (exit %s)\n" "$name" "$status" "$code"
    else
        printf "  %-14s %s\n" "$name" "$status"
    fi
done

if [ "$exit_code" -eq 0 ]; then
    echo "check.sh: all gates passed"
else
    echo "check.sh: failing with exit $exit_code (first failed gate)" >&2
fi
exit "$exit_code"
