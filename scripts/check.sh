#!/bin/sh
# Pre-PR gate: formatting, vet, staticcheck (when installed), build,
# and the full test suite with the race detector. Run from the
# repository root:
#
#   ./scripts/check.sh
#
# Exits non-zero on the first failure. CI (.github/workflows/ci.yml)
# runs the same gates plus fuzz and bench smoke jobs.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
# Capture to a file, not $(...): a gofmt crash (parse error, bad
# permissions) must fail the gate instead of yielding an empty list
# that reads as "all formatted".
fmtout=$(mktemp)
trap 'rm -f "$fmtout"' EXIT
if ! gofmt -l . >"$fmtout" 2>&1; then
    echo "gofmt: failed:" >&2
    cat "$fmtout" >&2
    exit 1
fi
if [ -s "$fmtout" ]; then
    echo "gofmt: needs formatting:" >&2
    cat "$fmtout" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck =="
    staticcheck ./...
else
    echo "== staticcheck == (skipped: not installed; CI runs it pinned)"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
# -count=1 defeats the test cache: a gate that replays cached results
# verifies nothing about the current build environment.
go test -race -count=1 ./...

echo "check.sh: all gates passed"
