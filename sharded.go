package streamgraph

import (
	"io"
	"math"

	"streamgraph/internal/graph"
	"streamgraph/internal/obs"
	"streamgraph/internal/oca"
	"streamgraph/internal/pipeline"
	"streamgraph/internal/shard"
	"streamgraph/internal/trace"
)

// ShardReport summarizes a sharded system's partitioning state; see
// System.ShardReport.
type ShardReport = shard.Report

// ShardInfo is one shard's row in a ShardReport.
type ShardInfo = shard.ShardInfo

// DecisionAudit is one controller decision record (ABR, OCA, or the
// shard repartitioner); see System.ShardAudits.
type DecisionAudit = obs.DecisionAudit

// newShardedSystem builds the N-shard variant of New: vertices are
// partitioned across cfg.Shards independent pipeline instances by
// consistent hashing, cross-shard edges are mirrored to both endpoint
// owners, and analytics run as scatter/gather supersteps instead of
// per-shard incremental engines. The dynamic repartitioner is on with
// its defaults.
func newShardedSystem(cfg Config, seed *graph.AdjacencyStore) *System {
	if cfg.LockFree {
		panic("streamgraph: Config.LockFree is incompatible with Shards > 1")
	}
	if cfg.ShadowStore != "" {
		panic("streamgraph: Config.ShadowStore is incompatible with Shards > 1")
	}

	var pol pipeline.Policy
	switch cfg.Policy {
	case NeverReorder:
		pol = pipeline.Baseline
	case AlwaysReorder:
		pol = pipeline.AlwaysROUSC
	default:
		pol = pipeline.ABRUSC
	}
	pcfg := pipeline.Config{
		Policy:    pol,
		ABRParams: cfg.ABR,
		AutoTune:  cfg.AutoTune,
		Workers:   cfg.Workers,
		OCA:       oca.Config{Disabled: true}, // analytics are scatter/gather, not per-shard engines
		Recover:   cfg.Recover,
		Shed:      cfg.Shed,
	}
	s := &System{cfg: cfg}
	s.router = shard.New(shard.Config{
		Shards:   cfg.Shards,
		Vertices: cfg.Vertices,
		Pipeline: pcfg,
		Seed:     seed,
		// The observability bundle and fault injector attach to shard 0
		// only: metrics and decision traces stay single-writer per
		// batch, and injected fault schedules remain deterministic
		// (fan-out interleaving would scramble a shared counter).
		PerShard: func(i int, c pipeline.Config) pipeline.Config {
			if i == 0 {
				c.Obs = cfg.Observer
				c.Fault = cfg.Fault
			}
			return c
		},
	})
	s.shardDirty = true
	return s
}

// applySharded routes one batch through the shard router and maps the
// aggregate outcome onto the facade Result.
func (s *System) applySharded(edges []Edge, traceID uint64) (Result, error) {
	b := &graph.Batch{ID: s.nextID, TraceID: traceID, Edges: edges}
	s.nextID++
	res, err := s.router.Apply(b)
	if err != nil {
		return Result{}, err
	}
	s.shardDirty = true
	return Result{
		BatchID:           res.BatchID,
		Reordered:         res.Reordered,
		Instrumented:      res.Instrumented,
		CAD:               res.CAD,
		Locality:          res.Locality,
		Update:            res.Update,
		Locks:             res.Locks,
		SearchComparisons: res.Comparisons,
	}, nil
}

// refreshSharded recomputes the configured analytic's vector via the
// scatter/gather drivers. Called lazily from the query methods.
func (s *System) refreshSharded() {
	if !s.shardDirty {
		return
	}
	s.shardDirty = false
	switch s.cfg.Analytics {
	case AnalyticsPageRank:
		s.shardRanks = s.router.PageRanks(0, 0, 0)
	case AnalyticsSSSP:
		s.shardDists = s.router.SSSPDistances(s.cfg.Source)
	case AnalyticsBFS:
		s.shardLevels = s.router.BFSLevels(s.cfg.Source)
	case AnalyticsCC:
		s.shardLabels = s.router.CCLabels()
	}
}

func (s *System) shardRank(v VertexID) float64 {
	s.refreshSharded()
	if int(v) >= len(s.shardRanks) {
		return 0
	}
	return s.shardRanks[v]
}

func (s *System) shardRanksCopy() []float64 {
	if s.cfg.Analytics != AnalyticsPageRank {
		return nil
	}
	s.refreshSharded()
	out := make([]float64, len(s.shardRanks))
	copy(out, s.shardRanks)
	return out
}

func (s *System) shardDistance(v VertexID) float64 {
	s.refreshSharded()
	if int(v) >= len(s.shardDists) {
		return math.Inf(1)
	}
	return s.shardDists[v]
}

func (s *System) shardLevel(v VertexID) int32 {
	s.refreshSharded()
	if int(v) >= len(s.shardLevels) {
		return -1
	}
	return s.shardLevels[v]
}

func (s *System) shardComponent(v VertexID) VertexID {
	s.refreshSharded()
	if int(v) >= len(s.shardLabels) {
		return v
	}
	return s.shardLabels[v]
}

// writeShardedSnapshot materializes the merged view into an adjacency
// copy (the snapshot format is single-store).
func (s *System) writeShardedSnapshot(w io.Writer) error {
	v := s.router.View()
	adj := graph.NewAdjacencyStore(v.NumVertices())
	for u := 0; u < v.NumVertices(); u++ {
		src := VertexID(u)
		v.ForEachOut(src, func(n Neighbor) {
			adj.InsertEdge(Edge{Src: src, Dst: n.ID, Weight: n.Weight})
		})
	}
	return trace.WriteSnapshot(w, adj)
}

// Sharded reports whether the system runs partitioned across multiple
// pipeline instances (Config.Shards > 1).
func (s *System) Sharded() bool { return s.router != nil }

// ShardReport returns the sharded system's partitioning summary: per
// shard, the batches routed, edges applied, isolated panics, and
// currently owned vertices/edges, plus the migration count. The zero
// report when the system is unsharded.
func (s *System) ShardReport() ShardReport {
	if s.router == nil {
		return ShardReport{}
	}
	return s.router.Report()
}

// ShardAudits returns the repartitioner's decision audit log (nil when
// unsharded). Holds and migrations both appear, Controller "repart".
func (s *System) ShardAudits() []DecisionAudit {
	if s.router == nil {
		return nil
	}
	return s.router.Audits()
}
