// Package streamgraph is an input-aware streaming graph processing
// system, reproducing "Improving Streaming Graph Processing
// Performance using Input Knowledge" (MICRO 2021).
//
// A streaming graph system ingests batches of edge updates and runs
// analytics on each new snapshot. This library's contribution — the
// paper's — is that both phases are optimized *adaptively, from the
// input itself*:
//
//   - Adaptive Batch Reordering (ABR) measures each sampled batch's
//     degree distribution (the CAD_λ metric) and reorders only the
//     batches whose high-degree vertices would otherwise serialize on
//     per-vertex locks.
//   - Update Search Coalescing (USC) turns a reordered vertex's many
//     duplicate-check searches into one scan plus a hash table.
//   - Overlap-based Compute Aggregation (OCA) merges the computation
//     rounds of consecutive batches that modify the same region of
//     the graph.
//   - A simulated CPU-coupled accelerator (HAU, internal/hau +
//     internal/sim) covers the reordering-adverse batches that
//     software cannot speed up.
//
// # Quick start
//
//	sys := streamgraph.New(streamgraph.Config{
//		Vertices:  100000,
//		Analytics: streamgraph.AnalyticsPageRank,
//	})
//	res, _ := sys.ApplyBatch(edges) // []streamgraph.Edge
//	fmt.Println(res.Reordered, sys.Rank(42))
//
// The examples/ directory contains runnable scenarios and
// cmd/sgbench regenerates every figure and table from the paper's
// evaluation.
package streamgraph

import (
	"errors"
	"io"
	"math"
	"time"

	"streamgraph/internal/abr"
	"streamgraph/internal/compute"
	"streamgraph/internal/fault"
	"streamgraph/internal/graph"
	"streamgraph/internal/obs"
	"streamgraph/internal/oca"
	"streamgraph/internal/pipeline"
	"streamgraph/internal/shard"
	"streamgraph/internal/trace"
)

// Re-exported core types. External callers use these aliases; the
// implementation lives in internal packages.
type (
	// VertexID identifies a vertex (dense, starting at 0).
	VertexID = graph.VertexID
	// Weight is an edge weight; unweighted graphs use 1.
	Weight = graph.Weight
	// Edge is one streamed modification (Delete marks removals).
	Edge = graph.Edge
	// Neighbor is one adjacency entry.
	Neighbor = graph.Neighbor
	// Store is the read-only graph snapshot interface.
	Store = graph.Store
	// ABRParams are the adaptive batch reordering parameters
	// (instrumentation period N, degree cutoff Lambda, threshold TH).
	ABRParams = abr.Params
	// Observer is the observability bundle (metrics registry +
	// per-batch decision traces); see NewObserver.
	Observer = obs.Observer
	// BatchTrace is one batch's structured pipeline trace.
	BatchTrace = obs.BatchTrace
	// RunMetrics aggregates per-batch pipeline metrics; see
	// System.MetricsSnapshot.
	RunMetrics = pipeline.RunMetrics
	// FaultInjector injects deterministic faults at pipeline stage
	// boundaries for robustness testing; see internal/fault and
	// Config.Fault. Nil disables injection at zero cost.
	FaultInjector = fault.Injector
	// FaultSpec is a deterministic, seed-replayable fault schedule;
	// build an injector from it with NewFaultInjector.
	FaultSpec = fault.Spec
	// ShedConfig sets the load-shed ladder's pressure thresholds; see
	// Config.Shed.
	ShedConfig = pipeline.ShedConfig
	// ShadowReport describes the adaptive store replica's current
	// state; see Config.ShadowStore and System.ShadowReport.
	ShadowReport = graph.ShadowReport
)

// NewFaultInjector builds a fault injector from a schedule. Pass it
// via Config.Fault.
func NewFaultInjector(spec FaultSpec) *FaultInjector { return fault.New(spec) }

// FaultProfile resolves a canned fault schedule by name ("off",
// "latency", "stall", "panic", "mixed"); ok is false for unknown
// names.
func FaultProfile(name string, seed int64) (FaultSpec, bool) {
	return fault.Profile(name, seed)
}

// NewObserver builds an observability bundle holding the last
// traceCapacity batch traces (0 means the default of 256; negative
// disables tracing, keeping metrics only). Pass it via
// Config.Observer; its registry serves Prometheus exposition and its
// ring the /trace endpoint of cmd/sgserve.
func NewObserver(traceCapacity int) *Observer {
	return obs.New(obs.Options{TraceCapacity: traceCapacity})
}

// Policy selects the update execution strategy.
type Policy int

const (
	// Adaptive is the paper's input-aware software mode: ABR decides
	// per batch whether to reorder, and reordered batches use USC.
	Adaptive Policy = iota
	// NeverReorder is the locked edge-parallel baseline.
	NeverReorder
	// AlwaysReorder applies input-oblivious reordering plus USC.
	AlwaysReorder
)

// Analytics selects the streaming computation.
type Analytics int

const (
	// AnalyticsNone ingests updates without computing.
	AnalyticsNone Analytics = iota
	// AnalyticsPageRank maintains incremental PageRank.
	AnalyticsPageRank
	// AnalyticsSSSP maintains incremental single-source shortest
	// paths from Config.Source.
	AnalyticsSSSP
	// AnalyticsBFS maintains incremental hop distances from
	// Config.Source.
	AnalyticsBFS
	// AnalyticsCC maintains incremental connected components
	// (undirected interpretation).
	AnalyticsCC
)

// Config configures a System. The zero value is usable: an adaptive
// update-only system that grows from an empty graph.
type Config struct {
	// Vertices pre-sizes the vertex space (the store grows on demand).
	Vertices int
	// Shards partitions the vertex space across that many independent
	// pipeline instances by consistent hashing (internal/shard):
	// batches split per shard with cross-shard edges mirrored to both
	// endpoint owners, fan out concurrently, and analytics run as
	// scatter/gather supersteps whose merged results match the
	// single-node engines. A dynamic repartitioner migrates hot vertex
	// ranges as the observed degree skew drifts. 0 or 1 means the
	// ordinary single-pipeline system. Incompatible with LockFree and
	// ShadowStore (New panics).
	Shards int
	// Workers is the goroutine count; 0 means GOMAXPROCS.
	Workers int
	// Policy is the update strategy (default Adaptive).
	Policy Policy
	// ABR overrides the adaptive parameters; zero value means the
	// paper's n=10, λ=256, TH=465.
	ABR ABRParams
	// Analytics selects the maintained computation.
	Analytics Analytics
	// Source is the SSSP source vertex.
	Source VertexID
	// DisableOCA turns off compute aggregation, for latency-critical
	// applications that cannot trade computation granularity.
	DisableOCA bool
	// AutoTune enables online feedback tuning of the ABR threshold
	// (Adaptive policy only): TH adjusts from observed per-edge
	// update costs instead of staying at the offline-fitted constant.
	AutoTune bool
	// ConcurrentCompute overlaps each computation round with the next
	// batch's update, running analytics on an immutable flat snapshot
	// (Aspen-style latency hiding). Round durations land in a later
	// batch's Result; call Flush before reading final analytics.
	ConcurrentCompute bool
	// Observer, when non-nil, turns on the observability layer: the
	// pipeline, update engines, and ABR/OCA controllers record
	// metrics and per-batch decision traces into it (see NewObserver).
	Observer *Observer
	// Fault, when non-nil, injects a deterministic fault schedule at
	// the pipeline's stage boundaries (robustness testing; see
	// NewFaultInjector). Nil is zero-cost.
	Fault *FaultInjector
	// Shed configures the load-shed ladder; the zero value disables
	// it. Requires a pressure source (SetPressureSource).
	Shed ShedConfig
	// Recover makes the overlapped-compute goroutine recover panics
	// into observability records instead of crashing the process.
	// Serving deployments (internal/server) enable it together with
	// ApplyBatchIsolated.
	Recover bool
	// LockFree routes updates through the epoch-based lock-free hot
	// path: batches apply with run-partitioned writers into per-batch
	// arena memory and publish atomically at an epoch boundary, and
	// readers — compute rounds, GraphSnapshot queries — pin wait-free
	// point-in-time snapshots instead of stopping the world for a
	// copy. Combine with ConcurrentCompute for full update/compute
	// overlap. WriteSnapshot still works (it materializes an adjacency
	// copy); Graph() reads the live store between batches.
	LockFree bool
	// ShadowStore, when non-empty, attaches an adaptive store replica
	// that ingests every batch after the primary update and migrates
	// the live graph between representations ("adjacency", "dah",
	// "hybrid", "tango") as the stream's observed profile drifts. The
	// value names the initial representation; New panics on unknown
	// names. Inspect the replica with System.ShadowReport.
	ShadowStore string
}

// Result reports one ingested batch.
type Result struct {
	// BatchID is the sequence number assigned to the batch.
	BatchID int
	// Reordered reports whether the batch ran in the reordered mode;
	// Instrumented whether ABR measured it (ABR-active).
	Reordered    bool
	Instrumented bool
	// CAD is the measured CAD_λ on instrumented batches.
	CAD float64
	// Locality is the current inter-batch locality estimate.
	Locality float64
	// Update and Compute are the phase durations. Compute is zero
	// when OCA deferred this batch's round.
	Update  time.Duration
	Compute time.Duration
	// ComputedBatches is how many batches the compute round covered
	// (0 if deferred).
	ComputedBatches int
	// Locks and SearchComparisons expose the update engine's
	// synchronization and duplicate-search work for observability
	// (the quantities the paper's optimizations target).
	Locks             int64
	SearchComparisons int64
}

// System is a streaming graph processing instance. Not safe for
// concurrent use: batches are ingested sequentially, as in the
// paper's execution model.
type System struct {
	cfg    Config
	runner *pipeline.Runner
	shadow *graph.AdaptiveStore
	pr     *compute.PageRank
	sssp   *compute.SSSP
	bfs    *compute.BFS
	cc     *compute.CC
	nextID int

	// Sharded mode (Config.Shards > 1): router replaces runner, and
	// the analytics vectors below are scatter/gather results cached
	// until the next batch dirties them.
	router      *shard.Router
	shardDirty  bool
	shardRanks  []float64
	shardDists  []float64
	shardLevels []int32
	shardLabels []graph.VertexID
}

// New builds a system from cfg.
func New(cfg Config) *System {
	if cfg.Shards > 1 {
		return newShardedSystem(cfg, nil)
	}
	if cfg.LockFree {
		return newSystem(cfg, nil)
	}
	return newSystem(cfg, graph.NewAdjacencyStore(cfg.Vertices))
}

// NewFromSnapshot restores a system from a snapshot written by
// WriteSnapshot. The configured analytic is initialized with one full
// refresh over the restored graph.
func NewFromSnapshot(cfg Config, r io.Reader) (*System, error) {
	store, err := trace.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		return newShardedSystem(cfg, store), nil
	}
	s := newSystem(cfg, store)
	if eng := s.engine(); eng != nil {
		eng.Update(store) // zero batches = full refresh
	}
	return s, nil
}

// engine returns the configured compute engine, if any.
func (s *System) engine() compute.Engine {
	switch {
	case s.pr != nil:
		return s.pr
	case s.sssp != nil:
		return s.sssp
	case s.bfs != nil:
		return s.bfs
	case s.cc != nil:
		return s.cc
	}
	return nil
}

func newSystem(cfg Config, store *graph.AdjacencyStore) *System {
	s := &System{cfg: cfg}

	var engine compute.Engine
	switch cfg.Analytics {
	case AnalyticsPageRank:
		s.pr = &compute.PageRank{Incremental: true, Workers: cfg.Workers}
		engine = s.pr
	case AnalyticsSSSP:
		s.sssp = &compute.SSSP{Incremental: true, Workers: cfg.Workers, Source: cfg.Source}
		engine = s.sssp
	case AnalyticsBFS:
		s.bfs = &compute.BFS{Incremental: true, Workers: cfg.Workers, Source: cfg.Source}
		engine = s.bfs
	case AnalyticsCC:
		s.cc = &compute.CC{Incremental: true, Workers: cfg.Workers}
		engine = s.cc
	}

	var pol pipeline.Policy
	switch cfg.Policy {
	case NeverReorder:
		pol = pipeline.Baseline
	case AlwaysReorder:
		pol = pipeline.AlwaysROUSC
	default:
		pol = pipeline.ABRUSC
	}

	if cfg.ShadowStore != "" {
		kind, err := graph.ParseStoreKind(cfg.ShadowStore)
		if err != nil {
			panic("streamgraph: Config.ShadowStore: " + err.Error())
		}
		shadowVerts := cfg.Vertices
		if store != nil {
			shadowVerts = store.NumVertices()
		}
		s.shadow = graph.NewAdaptiveStore(kind, shadowVerts, graph.AdaptiveOptions{
			Obs: cfg.Observer,
		})
		// Seed the replica with any pre-existing state (snapshot
		// restores); a fresh system's store is empty and this is free.
		if store != nil {
			for v := 0; v < store.NumVertices(); v++ {
				src := graph.VertexID(v)
				store.ForEachOut(src, func(n graph.Neighbor) {
					s.shadow.InsertEdge(graph.Edge{Src: src, Dst: n.ID, Weight: n.Weight})
				})
			}
		}
	}

	pcfg := pipeline.Config{
		Policy:            pol,
		ABRParams:         cfg.ABR,
		AutoTune:          cfg.AutoTune,
		Workers:           cfg.Workers,
		Compute:           engine,
		ConcurrentCompute: cfg.ConcurrentCompute,
		OCA:               oca.Config{Disabled: cfg.DisableOCA || engine == nil},
		Obs:               cfg.Observer,
		Fault:             cfg.Fault,
		Shed:              cfg.Shed,
		Recover:           cfg.Recover,
		Shadow:            s.shadow,
	}
	if cfg.LockFree {
		pcfg.Epoch = true
		verts := cfg.Vertices
		if store != nil && store.NumVertices() > verts {
			verts = store.NumVertices()
		}
		s.runner = pipeline.NewRunner(pcfg, verts)
		// Snapshot restores arrive as an adjacency store; replay its
		// edges into the epoch store so LockFree systems restore too.
		if store != nil {
			es := s.runner.EpochStore()
			for v := 0; v < store.NumVertices(); v++ {
				src := graph.VertexID(v)
				store.ForEachOut(src, func(n graph.Neighbor) {
					es.InsertEdge(graph.Edge{Src: src, Dst: n.ID, Weight: n.Weight})
				})
			}
		}
	} else {
		s.runner = pipeline.NewRunnerWithStore(pcfg, store)
	}
	return s
}

// ShadowReport returns the adaptive replica's current state; the zero
// report (empty Kind) when Config.ShadowStore is unset. Safe to call
// between batches; not synchronized with an in-flight ApplyBatch.
func (s *System) ShadowReport() ShadowReport {
	if s.shadow == nil {
		return ShadowReport{}
	}
	return s.shadow.Report()
}

// Observer returns the observability bundle the system records into
// (nil when Config.Observer was not set).
func (s *System) Observer() *Observer { return s.cfg.Observer }

// MetricsSnapshot returns a copy of the per-batch pipeline metrics
// accumulated so far. Unlike the live Result stream, it is safe to
// call from any goroutine, including while a ConcurrentCompute round
// is in flight.
func (s *System) MetricsSnapshot() RunMetrics {
	if s.router != nil {
		return s.router.MetricsSnapshot()
	}
	return s.runner.MetricsSnapshot()
}

// TunedABR returns the ABR parameters currently in effect (they move
// when Config.AutoTune is enabled). Sharded systems tune per shard;
// this reports the configured parameters.
func (s *System) TunedABR() ABRParams {
	if s.router != nil {
		return s.cfg.ABR
	}
	return s.runner.TunedParams()
}

// WriteSnapshot serializes the current graph for later restoration
// with NewFromSnapshot. Call Flush first if deferred compute rounds
// must be reflected in analytics (the snapshot itself only stores the
// graph).
func (s *System) WriteSnapshot(w io.Writer) error {
	if s.router != nil {
		return s.writeShardedSnapshot(w)
	}
	if st := s.runner.Store(); st != nil {
		return trace.WriteSnapshot(w, st)
	}
	// LockFree: the snapshot format is adjacency-backed, so
	// materialize a copy of the epoch store (stop-the-world is fine
	// here; snapshotting is an explicitly heavyweight operation).
	es := s.runner.EpochStore()
	adj := graph.NewAdjacencyStore(es.NumVertices())
	for v := 0; v < es.NumVertices(); v++ {
		src := graph.VertexID(v)
		es.ForEachOut(src, func(n graph.Neighbor) {
			adj.InsertEdge(graph.Edge{Src: src, Dst: n.ID, Weight: n.Weight})
		})
	}
	return trace.WriteSnapshot(w, adj)
}

// Recompute refreshes the configured analytic over the whole current
// snapshot (a full static round).
func (s *System) Recompute() {
	if s.router != nil {
		s.shardDirty = true
		s.refreshSharded()
		return
	}
	if eng := s.engine(); eng != nil {
		eng.Update(s.runner.ReadStore())
	}
}

// ApplyBatch ingests one batch of edges and runs the (possibly
// aggregated) computation round.
func (s *System) ApplyBatch(edges []Edge) (Result, error) {
	if len(edges) == 0 {
		return Result{}, errors.New("streamgraph: empty batch")
	}
	if s.router != nil {
		return s.applySharded(edges, 0)
	}
	b := &graph.Batch{ID: s.nextID, Edges: edges}
	s.nextID++
	bm := s.runner.ProcessBatch(b)
	return Result{
		BatchID:           bm.BatchID,
		Reordered:         bm.Reordered,
		Instrumented:      bm.ABRActive,
		CAD:               bm.CAD,
		Locality:          bm.Locality,
		Update:            bm.Update,
		Compute:           bm.Compute,
		ComputedBatches:   bm.AggregatedBatches,
		Locks:             bm.Stats.Locks,
		SearchComparisons: bm.Stats.Comparisons,
	}, nil
}

// ApplyBatchIsolated is ApplyBatch behind the pipeline's panic
// isolation boundary: a panic while processing the batch (a fault
// injection or a real bug) is returned as an error instead of
// crashing, the system stays usable, and — because injected update
// panics fire before any store mutation and batch re-application is
// idempotent — re-submitting the same batch is always safe. The
// failed attempt keeps its batch ID; IDs number attempts, not
// successes.
func (s *System) ApplyBatchIsolated(edges []Edge) (Result, error) {
	return s.ApplyBatchIsolatedTraced(edges, 0)
}

// ApplyBatchIsolatedTraced is ApplyBatchIsolated with an explicit
// trace ID: the server allocates one per ingest request (see
// Observer.NextTraceID) so request-level spans recorded before the
// batch existed — parse, admission — join the batch's span tree.
// traceID 0 lets the pipeline allocate a fresh one.
func (s *System) ApplyBatchIsolatedTraced(edges []Edge, traceID uint64) (Result, error) {
	if len(edges) == 0 {
		return Result{}, errors.New("streamgraph: empty batch")
	}
	if s.router != nil {
		return s.applySharded(edges, traceID)
	}
	b := &graph.Batch{ID: s.nextID, TraceID: traceID, Edges: edges}
	s.nextID++
	bm, err := s.runner.ProcessBatchIsolated(b)
	if err != nil {
		return Result{}, err
	}
	return Result{
		BatchID:           bm.BatchID,
		Reordered:         bm.Reordered,
		Instrumented:      bm.ABRActive,
		CAD:               bm.CAD,
		Locality:          bm.Locality,
		Update:            bm.Update,
		Compute:           bm.Compute,
		ComputedBatches:   bm.AggregatedBatches,
		Locks:             bm.Stats.Locks,
		SearchComparisons: bm.Stats.Comparisons,
	}, nil
}

// SetPressureSource attaches the load-shed ladder's input: a function
// returning current ingestion pressure in [0, 1] (internal/server
// reports admission-queue occupancy). Call before the first batch.
func (s *System) SetPressureSource(f func() float64) {
	if s.router != nil {
		s.router.SetPressure(f)
		return
	}
	s.runner.SetPressure(f)
}

// Flush forces any computation round OCA deferred. Call at stream
// end (or before reading results that must reflect every batch).
func (s *System) Flush() {
	if s.router != nil {
		if err := s.router.Flush(); err != nil {
			panic(err)
		}
		return
	}
	s.runner.Finish()
}

// FlushIsolated is Flush behind the panic isolation boundary; see
// ApplyBatchIsolated.
func (s *System) FlushIsolated() error {
	if s.router != nil {
		return s.router.Flush()
	}
	return s.runner.FinishIsolated()
}

// Graph returns the current graph state for ad-hoc queries. The view
// is live: under the sequential execution contract read it between
// batches. For reads concurrent with ingest use GraphSnapshot.
func (s *System) Graph() Store {
	if s.router != nil {
		return s.router.View()
	}
	return s.runner.ReadStore()
}

// LockFree reports whether the system runs the epoch-based lock-free
// hot path (Config.LockFree): GraphSnapshot views are then safe to
// read concurrently with an in-flight ApplyBatch.
func (s *System) LockFree() bool { return s.cfg.LockFree }

// GraphSnapshot returns a point-in-time view of the graph and a
// release function that MUST be called when the read is done. In
// LockFree mode the view is a pinned epoch snapshot: wait-free,
// consistent at a batch boundary, and safe to read while ApplyBatch
// runs on another goroutine — but a held pin stalls memory
// reclamation, so release promptly. Otherwise the view is the live
// store with a no-op release and the sequential contract applies.
func (s *System) GraphSnapshot() (Store, func()) {
	if s.router != nil {
		return s.router.View(), func() {}
	}
	if es := s.runner.EpochStore(); es != nil {
		snap := es.Snapshot()
		return snap, snap.Release
	}
	return s.runner.ReadStore(), func() {}
}

// NumVertices returns the current vertex-space size.
func (s *System) NumVertices() int {
	if s.router != nil {
		return s.router.NumVertices()
	}
	return s.runner.ReadStore().NumVertices()
}

// NumEdges returns the current directed edge count (mirrored copies
// in sharded mode count once, at the source's owner).
func (s *System) NumEdges() int {
	if s.router != nil {
		return s.router.NumEdges()
	}
	return s.runner.ReadStore().NumEdges()
}

// Rank returns a vertex's current PageRank (0 when PageRank is not
// the configured analytic).
func (s *System) Rank(v VertexID) float64 {
	if s.router != nil {
		if s.cfg.Analytics != AnalyticsPageRank {
			return 0
		}
		return s.shardRank(v)
	}
	if s.pr == nil {
		return 0
	}
	return s.pr.Rank(v)
}

// Ranks returns a copy of the PageRank vector (nil when PageRank is
// not the configured analytic).
func (s *System) Ranks() []float64 {
	if s.router != nil {
		return s.shardRanksCopy()
	}
	if s.pr == nil {
		return nil
	}
	return s.pr.Ranks()
}

// Distance returns a vertex's current shortest-path distance from
// Config.Source (+Inf when unreached or SSSP is not configured).
func (s *System) Distance(v VertexID) float64 {
	if s.router != nil {
		if s.cfg.Analytics != AnalyticsSSSP {
			return math.Inf(1)
		}
		return s.shardDistance(v)
	}
	if s.sssp == nil {
		return math.Inf(1)
	}
	return s.sssp.Dist(v)
}

// Level returns a vertex's current BFS hop distance from
// Config.Source (-1 when unreached or BFS is not configured).
func (s *System) Level(v VertexID) int32 {
	if s.router != nil {
		if s.cfg.Analytics != AnalyticsBFS {
			return -1
		}
		return s.shardLevel(v)
	}
	if s.bfs == nil {
		return -1
	}
	return s.bfs.Level(v)
}

// Component returns a vertex's current connected-component label (the
// vertex's own ID when CC is not configured or v is isolated).
func (s *System) Component(v VertexID) VertexID {
	if s.router != nil {
		if s.cfg.Analytics != AnalyticsCC {
			return v
		}
		return s.shardComponent(v)
	}
	if s.cc == nil {
		return v
	}
	return s.cc.Label(v)
}
