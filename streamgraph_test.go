package streamgraph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func randomEdges(seed int64, n, vspace int) []Edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Edge, n)
	for i := range out {
		src := VertexID(rng.Intn(vspace))
		dst := VertexID(rng.Intn(vspace))
		if src == dst {
			dst = (dst + 1) % VertexID(vspace)
		}
		out[i] = Edge{Src: src, Dst: dst, Weight: Weight(rng.Intn(9) + 1)}
	}
	return out
}

func TestSystemBasicIngestion(t *testing.T) {
	sys := New(Config{Vertices: 100, Workers: 2})
	res, err := sys.ApplyBatch([]Edge{{Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 3, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchID != 0 {
		t.Fatalf("BatchID = %d", res.BatchID)
	}
	if !res.Instrumented {
		t.Fatal("first batch should be ABR-active")
	}
	if sys.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", sys.NumEdges())
	}
	if !sys.Graph().HasEdge(1, 2) {
		t.Fatal("edge missing from snapshot")
	}
	if _, err := sys.ApplyBatch(nil); err == nil {
		t.Fatal("empty batch should error")
	}
	res2, _ := sys.ApplyBatch([]Edge{{Src: 2, Dst: 3, Delete: true}})
	if res2.BatchID != 1 {
		t.Fatalf("BatchID = %d", res2.BatchID)
	}
	if sys.Graph().HasEdge(2, 3) {
		t.Fatal("deletion not applied")
	}
}

func TestSystemPageRank(t *testing.T) {
	sys := New(Config{Vertices: 50, Workers: 2, Analytics: AnalyticsPageRank, DisableOCA: true})
	// Star onto vertex 7: it must end with the top rank.
	var edges []Edge
	for i := 0; i < 20; i++ {
		edges = append(edges, Edge{Src: VertexID(i + 10), Dst: 7, Weight: 1})
	}
	if _, err := sys.ApplyBatch(edges); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	ranks := sys.Ranks()
	if len(ranks) == 0 {
		t.Fatal("no ranks")
	}
	best := VertexID(0)
	for v := range ranks {
		if ranks[v] > ranks[best] {
			best = VertexID(v)
		}
	}
	if best != 7 {
		t.Fatalf("top-ranked vertex = %d, want 7", best)
	}
	if sys.Rank(7) != ranks[7] {
		t.Fatal("Rank accessor mismatch")
	}
	if !math.IsInf(sys.Distance(7), 1) {
		t.Fatal("Distance should be +Inf without SSSP")
	}
}

func TestSystemSSSP(t *testing.T) {
	sys := New(Config{Vertices: 10, Workers: 2, Analytics: AnalyticsSSSP, Source: 0, DisableOCA: true})
	batch := []Edge{
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 0, Dst: 2, Weight: 10},
	}
	if _, err := sys.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if d := sys.Distance(2); d != 5 {
		t.Fatalf("Distance(2) = %v, want 5", d)
	}
	if sys.Ranks() != nil {
		t.Fatal("Ranks should be nil without PageRank")
	}
	// A better edge arrives: distance improves.
	if _, err := sys.ApplyBatch([]Edge{{Src: 0, Dst: 2, Weight: 4}}); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if d := sys.Distance(2); d != 4 {
		t.Fatalf("Distance(2) after update = %v, want 4", d)
	}
}

// TestPoliciesAgree: all public policies converge to the same graph.
func TestPoliciesAgree(t *testing.T) {
	edges := randomEdges(5, 3000, 200)
	var refEdges int
	for i, pol := range []Policy{Adaptive, NeverReorder, AlwaysReorder} {
		sys := New(Config{Vertices: 200, Workers: 2, Policy: pol})
		for lo := 0; lo < len(edges); lo += 500 {
			if _, err := sys.ApplyBatch(edges[lo : lo+500]); err != nil {
				t.Fatal(err)
			}
		}
		if i == 0 {
			refEdges = sys.NumEdges()
			continue
		}
		if sys.NumEdges() != refEdges {
			t.Fatalf("policy %d: NumEdges = %d, want %d", pol, sys.NumEdges(), refEdges)
		}
	}
}

// TestABRTurnsOffOnAdverseStream: scattered batches make the adaptive
// system stop reordering after the first instrumented batch.
func TestABRTurnsOffOnAdverseStream(t *testing.T) {
	sys := New(Config{Vertices: 50000, Workers: 2})
	for i := 0; i < 3; i++ {
		res, err := sys.ApplyBatch(randomEdges(int64(i), 2000, 50000))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && !res.Reordered {
			t.Fatal("first batch reorders by default")
		}
		if i > 0 && res.Reordered {
			t.Fatal("ABR should have turned reordering off")
		}
	}
}

// TestOCAAggregatesViaFacade: high-overlap consecutive batches get an
// aggregated compute round.
func TestOCAAggregatesViaFacade(t *testing.T) {
	// Locality is measured on ABR-active batches (every n-th); use a
	// short period so the second measurement lands early.
	sys := New(Config{Vertices: 300, Workers: 2, Analytics: AnalyticsPageRank,
		ABR: ABRParams{N: 2, Lambda: 256, TH: 465}})
	mk := func(seed int64) []Edge { return randomEdges(seed, 2000, 300) }
	sawAggregated := false
	for i := 0; i < 6; i++ {
		res, err := sys.ApplyBatch(mk(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.ComputedBatches == 2 {
			sawAggregated = true
		}
	}
	sys.Flush()
	if !sawAggregated {
		t.Fatal("expected at least one aggregated compute round on a high-overlap stream")
	}
}

func TestSnapshotRestore(t *testing.T) {
	sys := New(Config{Vertices: 100, Workers: 2, Analytics: AnalyticsPageRank, DisableOCA: true})
	var edges []Edge
	for i := 0; i < 30; i++ {
		edges = append(edges, Edge{Src: VertexID(i + 10), Dst: 7, Weight: 1})
	}
	if _, err := sys.ApplyBatch(edges); err != nil {
		t.Fatal(err)
	}
	sys.Flush()

	var buf bytes.Buffer
	if err := sys.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromSnapshot(Config{Workers: 2, Analytics: AnalyticsPageRank, DisableOCA: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumEdges() != sys.NumEdges() {
		t.Fatalf("restored %d edges, want %d", restored.NumEdges(), sys.NumEdges())
	}
	// The analytic was refreshed over the restored graph: vertex 7 is
	// still the top-ranked vertex.
	best := VertexID(0)
	for v, r := range restored.Ranks() {
		if r > restored.Rank(best) {
			best = VertexID(v)
			_ = r
		}
	}
	if best != 7 {
		t.Fatalf("restored top rank at %d, want 7", best)
	}
	// Streaming continues on the restored system.
	if _, err := restored.ApplyBatch([]Edge{{Src: 1, Dst: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if !restored.Graph().HasEdge(1, 2) {
		t.Fatal("post-restore batch lost")
	}
}

func TestBFSAndCCFacade(t *testing.T) {
	sys := New(Config{Vertices: 10, Workers: 2, Analytics: AnalyticsBFS, Source: 0, DisableOCA: true})
	sys.ApplyBatch([]Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}})
	sys.Flush()
	if sys.Level(2) != 2 {
		t.Fatalf("Level(2) = %d", sys.Level(2))
	}
	if sys.Component(2) != 2 {
		t.Fatal("Component without CC should be identity")
	}

	cc := New(Config{Vertices: 10, Workers: 2, Analytics: AnalyticsCC, DisableOCA: true})
	cc.ApplyBatch([]Edge{{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 5, Weight: 1}})
	cc.Flush()
	if cc.Component(5) != 3 {
		t.Fatalf("Component(5) = %d", cc.Component(5))
	}
	if cc.Level(5) != -1 {
		t.Fatal("Level without BFS should be -1")
	}
}

func TestConcurrentComputeFacade(t *testing.T) {
	sys := New(Config{Vertices: 50, Workers: 2, Analytics: AnalyticsSSSP,
		Source: 0, DisableOCA: true, ConcurrentCompute: true})
	sys.ApplyBatch([]Edge{{Src: 0, Dst: 1, Weight: 2}})
	sys.ApplyBatch([]Edge{{Src: 1, Dst: 2, Weight: 3}})
	sys.Flush()
	if d := sys.Distance(2); d != 5 {
		t.Fatalf("Distance(2) = %v with concurrent compute", d)
	}
}

// TestKitchenSink drives every adaptive feature at once — ABR with
// AutoTune, OCA, concurrent compute — over a real profile stream and
// checks the graph and analytics stay consistent.
func TestKitchenSink(t *testing.T) {
	sys := New(Config{
		Vertices:          5000,
		Workers:           2,
		Analytics:         AnalyticsPageRank,
		AutoTune:          true,
		ConcurrentCompute: true,
		ABR:               ABRParams{N: 2, Lambda: 256, TH: 465},
	})
	ref := New(Config{Vertices: 5000, Workers: 2, Policy: NeverReorder, DisableOCA: true})
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 10; i++ {
		edges := make([]Edge, 0, 1500)
		for j := 0; j < 1500; j++ {
			src := VertexID(rng.Intn(5000))
			dst := VertexID(rng.Intn(5000))
			if i%2 == 0 && j%2 == 0 {
				dst = 9 // alternate hub-heavy batches
			}
			if src == dst {
				src = (src + 1) % 5000
			}
			edges = append(edges, Edge{Src: src, Dst: dst, Weight: 1})
		}
		if _, err := sys.ApplyBatch(edges); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyBatch(edges); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	if sys.NumEdges() != ref.NumEdges() {
		t.Fatalf("adaptive system diverged: %d edges vs %d", sys.NumEdges(), ref.NumEdges())
	}
	// The hub carries the top rank.
	best := VertexID(0)
	for v := range sys.Ranks() {
		if sys.Rank(VertexID(v)) > sys.Rank(best) {
			best = VertexID(v)
		}
	}
	if best != 9 {
		t.Fatalf("top rank at %d, want the hub (9)", best)
	}
}

// TestLockFreeFacade runs the epoch-based hot path through the public
// facade — with concurrent compute, so rounds read pinned snapshots —
// and checks it converges to the same graph as the locked reference,
// and that a GraphSnapshot view is immune to later batches.
func TestLockFreeFacade(t *testing.T) {
	sys := New(Config{Vertices: 200, Workers: 2, LockFree: true,
		Analytics: AnalyticsPageRank, ConcurrentCompute: true, DisableOCA: true})
	if !sys.LockFree() {
		t.Fatal("LockFree() accessor false on a lock-free system")
	}
	ref := New(Config{Vertices: 200, Workers: 2, Policy: NeverReorder, DisableOCA: true})
	edges := randomEdges(11, 3000, 200)
	for lo := 0; lo < len(edges); lo += 500 {
		if _, err := sys.ApplyBatch(edges[lo : lo+500]); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyBatch(edges[lo : lo+500]); err != nil {
			t.Fatal(err)
		}
	}

	// A pinned snapshot must keep showing its batch boundary even as
	// more batches land in the live store.
	snap, release := sys.GraphSnapshot()
	before := snap.NumEdges()
	if _, err := sys.ApplyBatch([]Edge{{Src: 190, Dst: 191, Weight: 1}, {Src: 191, Dst: 192, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := snap.NumEdges(); got != before {
		t.Fatalf("pinned snapshot moved: %d edges, want %d", got, before)
	}
	release()
	ref.ApplyBatch([]Edge{{Src: 190, Dst: 191, Weight: 1}, {Src: 191, Dst: 192, Weight: 1}})

	sys.Flush()
	if sys.NumEdges() != ref.NumEdges() {
		t.Fatalf("lock-free system diverged: %d edges vs %d", sys.NumEdges(), ref.NumEdges())
	}
	for _, e := range edges[:100] {
		if sys.Graph().HasEdge(e.Src, e.Dst) != ref.Graph().HasEdge(e.Src, e.Dst) {
			t.Fatalf("edge (%d,%d) presence differs from reference", e.Src, e.Dst)
		}
	}
	if len(sys.Ranks()) == 0 {
		t.Fatal("no ranks from concurrent compute over pinned snapshots")
	}
}

// TestLockFreeSnapshotRestore round-trips WriteSnapshot across modes:
// a lock-free system's snapshot restores into a locked system and vice
// versa, with streaming continuing on the restored instance.
func TestLockFreeSnapshotRestore(t *testing.T) {
	src := New(Config{Vertices: 100, Workers: 2, LockFree: true, DisableOCA: true})
	var edges []Edge
	for i := 0; i < 30; i++ {
		edges = append(edges, Edge{Src: VertexID(i + 10), Dst: 7, Weight: Weight(i%5 + 1)})
	}
	if _, err := src.ApplyBatch(edges); err != nil {
		t.Fatal(err)
	}
	src.Flush()

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	locked, err := NewFromSnapshot(Config{Workers: 2, DisableOCA: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if locked.NumEdges() != src.NumEdges() {
		t.Fatalf("locked restore: %d edges, want %d", locked.NumEdges(), src.NumEdges())
	}

	buf.Reset()
	if err := locked.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	lockfree, err := NewFromSnapshot(Config{Workers: 2, LockFree: true, DisableOCA: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !lockfree.LockFree() || lockfree.NumEdges() != src.NumEdges() {
		t.Fatalf("lock-free restore: %d edges, want %d", lockfree.NumEdges(), src.NumEdges())
	}
	if _, err := lockfree.ApplyBatch([]Edge{{Src: 1, Dst: 2, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if !lockfree.Graph().HasEdge(1, 2) {
		t.Fatal("post-restore batch lost on lock-free system")
	}
}

func TestShadowStoreFacade(t *testing.T) {
	sys := New(Config{Vertices: 64, ShadowStore: "tango"})
	for id := 0; id < 4; id++ {
		var edges []Edge
		for i := 0; i < 100; i++ {
			edges = append(edges, Edge{Src: VertexID(i % 16), Dst: VertexID((i + id) % 64), Weight: 1})
		}
		if _, err := sys.ApplyBatch(edges); err != nil {
			t.Fatal(err)
		}
	}
	rep := sys.ShadowReport()
	if rep.Kind == "" {
		t.Fatal("shadow report empty with ShadowStore set")
	}
	if rep.Edges != sys.NumEdges() {
		t.Fatalf("shadow edges %d, primary %d", rep.Edges, sys.NumEdges())
	}
	if New(Config{Vertices: 4}).ShadowReport().Kind != "" {
		t.Fatal("shadow report non-empty without ShadowStore")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown ShadowStore name did not panic")
		}
	}()
	New(Config{Vertices: 4, ShadowStore: "csr"})
}
